"""The Censys platform facade: composable pipeline stages over a
keyspace-sharded journal/index layer.

``CensysPlatform`` no longer implements the pipeline — it *wires* it.
Each tick advances five independently scalable stages (mirroring the
production system's decomposition):

1. :class:`~repro.core.stages.DiscoveryStage` — TCP/UDP discovery tiers,
   predictive proposals, re-injections, due refreshes, and web-property
   name discovery feed the deduplicating scan queue;
2. :class:`~repro.core.stages.InterrogationStage` — workers drain the
   queue (globally or per shard): protocol detection, full handshakes,
   refresh fast-paths, multi-PoP retry;
3. :class:`~repro.core.stages.IngestStage` — the CQRS write side journals
   deltas into per-shard journals and pumps follow-up work onto the bus;
4. :class:`~repro.core.stages.DerivationStage` — asynchronous consumers:
   search reindexing, certificate processing, secondary indexes;
5. :class:`~repro.core.stages.ServingLayer` — lookup, search, and
   analytics read surfaces.

Storage is partitioned by a deterministic
:class:`~repro.pipeline.sharding.ShardMap`; ``shards=1`` (the default) is
bit-identical to the unsharded seed platform, and ``shards=N`` keeps all
query results invariant while letting stages drain shards independently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.certs import CaWorld, CrlRegistry, CtLog, seed_ct_log_from_workload
from repro.core.scheduler import RefreshScheduler
from repro.core.stages import (
    DerivationStage,
    DiscoveryStage,
    IngestStage,
    InterrogationStage,
    ServingLayer,
    TierSweep,
)
from repro.enrich import GeoIpRegistry, WhoisRegistry, standard_enrichers
from repro.pipeline import (
    EventBus,
    ReadSide,
    ReconstructionCache,
    ShardMap,
    ShardedJournal,
    WriteSideProcessor,
    make_executor,
)
from repro.protocols import Interrogator, ProtocolRegistry, default_registry
from repro.scan import (
    PredictiveEngine,
    ScanQueue,
    default_pops,
    make_background_tier,
    make_cloud_tier,
    make_priority_tier,
    make_udp_tier,
    priority_ports,
)
from repro.scan.exclusions import ExclusionList
from repro.scan.pop import PointOfPresence
from repro.search import ShardedSearchIndex
from repro.simnet import DAY, SimClock, SimulatedInternet
from repro.simnet.instances import ServiceInstance
from repro.webprops import NameFeed, WebPropertyScanner

__all__ = ["PlatformConfig", "CensysPlatform"]


@dataclass(slots=True)
class PlatformConfig:
    """Operational policy knobs (the paper's headline numbers as defaults)."""

    priority_cycle_hours: float = 24.0
    cloud_cycle_hours: float = 24.0
    background_ports_per_ip_per_day: float = 100.0
    refresh_interval_hours: float = 24.0
    eviction_after_hours: float = 72.0
    predictive_enabled: bool = True
    predictive_daily_budget: int = 4000
    reinject_window_hours: float = 60 * DAY
    webprop_refresh_hours: float = 30 * DAY
    filter_pseudo_services: bool = True
    snapshot_daily: bool = False
    #: L7 interrogations per simulated hour (None: unbounded).
    l7_capacity_per_hour: Optional[int] = None
    scanner_id: str = "censys"
    seed: int = 0
    #: Keyspace shards for the journal/index/queue layer (1 = unsharded).
    shards: int = 1
    #: Queue drain policy when sharded: "merged" (global order, shard-count
    #: invariant) or "round_robin" (independent per-shard budgets).
    shard_drain: str = "merged"
    #: Directory for per-shard write-ahead logs (None = in-memory journal).
    wal_dir: Optional[str] = None
    #: Group-commit window for durable shards: fsync after this many WAL
    #: batches (1 = fsync-per-batch, the reference).  Windows are always
    #: flushed before replication ships or subscriptions deliver, so the
    #: zero-acked-write-loss guarantee is unchanged at any size.
    group_commit_events: int = 1
    #: Byte bound on the group-commit window (None = event bound only).
    group_commit_bytes: Optional[int] = None
    #: Max observations per batched ingest call from the interrogation
    #: drain (1 = per-event reference path; any size is bit-identical).
    ingest_batch: int = 64
    #: Versioned read-path caches (reconstruction, view, query-result).
    #: False = the bit-identical uncached reference configuration.
    read_cache: bool = True
    reconstruction_cache_entries: int = 4096
    view_cache_entries: int = 4096
    query_cache_entries: int = 256
    #: Per-shard fan-out backend: "serial" (the bit-identical reference),
    #: "thread", "process", or a ShardExecutor instance.
    executor: Any = "serial"
    #: Worker count for pooled executors (None = backend default).
    executor_workers: Optional[int] = None
    #: Replica journals per shard (0 = no replication: the pre-replication
    #: platform, bit-identical).  Requires ``wal_dir`` — replication ships
    #: committed WAL batches, so shards must be durable.
    replication_factor: int = 0
    #: Replicas that must hold a batch before it counts as acknowledged
    #: (None = all of them; see pipeline/replication.py watermark notes).
    replication_ack_replicas: Optional[int] = None
    #: Serve single-host lookups from replicas when within the staleness
    #: bound below (batch endpoints always read the primary).
    replica_reads: bool = False
    #: Staleness bound for replica reads, in whole-shard journal events
    #: (0 = only fully caught-up replicas may serve).
    replica_max_lag_events: int = 0
    #: Optional FaultPlan for the simulated replication transport (chaos
    #: tests; None = perfect links).
    replication_plan: Any = None
    #: Background journal compaction: fold sealed WAL segments into the
    #: per-shard cold tier (requires ``wal_dir``).  False = the
    #: uncompacted reference; reads are bit-identical either way.
    compaction: bool = False
    #: Simulated hours between compaction passes.
    compaction_interval_hours: float = 24.0
    #: Sealed segments a shard must accumulate before a fold runs.
    compaction_min_sealed_segments: int = 4
    #: Upper bound on sealed segments folded per pass per shard.
    compaction_max_segments_per_run: int = 64
    #: Also fold replica journals (and freeze acked batch-log prefixes)
    #: during each compaction pass when replication is enabled.
    compaction_replicas: bool = True
    #: Standing-query subscriptions: registered plans evaluated
    #: incrementally on every reindex (False = off, the bit-identical
    #: default used by every committed experiment run).
    subscriptions: bool = False
    #: Optional FaultPlan for the notification delivery channel (chaos
    #: tests; None = perfect delivery).
    subscription_delivery_plan: Any = None


class CensysPlatform:
    """Composition root: builds the shared substrate, wires the stages."""

    def __init__(
        self,
        internet: SimulatedInternet,
        config: Optional[PlatformConfig] = None,
        pops: Optional[List[PointOfPresence]] = None,
        registry: Optional[ProtocolRegistry] = None,
        start_time: Optional[float] = None,
    ) -> None:
        self.internet = internet
        self.config = cfg = config or PlatformConfig()
        self.registry = registry or default_registry()
        self.pops = pops or default_pops()
        start = start_time if start_time is not None else internet.workload.config.t_start
        self.clock = SimClock(start)
        self._start_time = start
        sid = cfg.scanner_id

        # -- sharded storage substrate ------------------------------------
        self.shard_map = ShardMap(cfg.shards)
        self.executor = make_executor(cfg.executor, workers=cfg.executor_workers)
        if cfg.wal_dir:
            self.journal = ShardedJournal.durable(
                cfg.wal_dir,
                self.shard_map,
                group_commit_events=cfg.group_commit_events,
                group_commit_bytes=cfg.group_commit_bytes,
            )
        else:
            self.journal = ShardedJournal(self.shard_map)
        self.replication = None
        if cfg.replication_factor > 0:
            if not cfg.wal_dir:
                raise ValueError(
                    "replication_factor > 0 requires wal_dir: replication ships "
                    "committed WAL batches, so shard journals must be durable"
                )
            from repro.pipeline.replication import ReplicationManager

            self.replication = ReplicationManager(
                self.journal,
                cfg.replication_factor,
                cfg.wal_dir,
                plan=cfg.replication_plan,
                ack_replicas=cfg.replication_ack_replicas,
                serve_reads=cfg.replica_reads,
                max_lag_events=cfg.replica_max_lag_events,
                executor=self.executor,
            )
        self.compactor = None
        if cfg.compaction:
            if not cfg.wal_dir:
                raise ValueError(
                    "compaction=True requires wal_dir: compaction folds sealed "
                    "WAL segments, so shard journals must be durable"
                )
            from repro.pipeline.compaction import ShardedCompactor

            self.compactor = ShardedCompactor(
                self.journal.journals,
                [
                    self.shard_map.shard_dir(cfg.wal_dir, shard)
                    for shard in range(self.shard_map.shards)
                ],
                min_sealed_segments=cfg.compaction_min_sealed_segments,
                max_segments_per_run=cfg.compaction_max_segments_per_run,
                batch_limit_for=(
                    self.replication.batch_limit_for if self.replication is not None else None
                ),
            )
        self.bus = EventBus()
        self.write_side = WriteSideProcessor(
            self.journal, self.bus, filter_pseudo_services=cfg.filter_pseudo_services
        )
        self.geoip = GeoIpRegistry(internet.topology)
        self.whois = WhoisRegistry(internet.topology)
        self.reconstruction_cache = (
            ReconstructionCache(self.journal, cfg.reconstruction_cache_entries)
            if cfg.read_cache
            else None
        )
        self.read_side = ReadSide(
            self.journal,
            standard_enrichers(internet.space, self.geoip, self.whois),
            cache=self.reconstruction_cache,
            view_cache_entries=cfg.view_cache_entries if cfg.read_cache else 0,
        )
        self.index = ShardedSearchIndex(
            self.shard_map,
            query_cache_entries=cfg.query_cache_entries if cfg.read_cache else 0,
            executor=self.executor,
        )

        # -- shared scanning components ------------------------------------
        tiers = [
            make_priority_tier(internet, cfg.priority_cycle_hours, seed=cfg.seed + 11, scanner_id=sid),
            make_udp_tier(internet, cfg.priority_cycle_hours, seed=cfg.seed + 13, scanner_id=sid),
        ]
        cloud = make_cloud_tier(internet, cfg.cloud_cycle_hours, seed=cfg.seed + 17, scanner_id=sid)
        if cloud is not None:
            tiers.append(cloud)
        tiers.append(
            make_background_tier(
                internet, cfg.background_ports_per_ip_per_day, seed=cfg.seed + 19, scanner_id=sid
            )
        )
        shard_of = None
        if cfg.shards > 1:
            shard_of = lambda ip_index: self.shard_map.shard_of(self.entity_for_ip(ip_index))  # noqa: E731
        self.queue = ScanQueue(shards=cfg.shards, shard_of=shard_of)
        self.interrogator = Interrogator(self.registry)
        self.exclusions = ExclusionList(internet.space)
        self.predictive = PredictiveEngine(
            internet.topology, reinject_window_hours=cfg.reinject_window_hours, seed=cfg.seed + 23
        )
        self.scheduler = RefreshScheduler(
            refresh_interval=cfg.refresh_interval_hours, eviction_after=cfg.eviction_after_hours
        )

        # -- certificates and web properties --------------------------------
        self.ca_world = CaWorld()
        self.crl = CrlRegistry()
        self.ct_log = CtLog()
        seed_ct_log_from_workload(internet, self.ca_world, self.ct_log)
        self.name_feed = NameFeed(internet.workload, self.ct_log, seed=cfg.seed)
        self.web_scanner = WebPropertyScanner(internet, self.interrogator, scanner_id=sid)

        # -- the stages ------------------------------------------------------
        self.ingest = IngestStage(self.journal, self.bus, self.write_side)
        self.derivation = DerivationStage(
            self.journal, self.bus, self.read_side, self.index,
            self.ca_world, self.crl, self.ct_log, self.shard_map,
        )
        self.subscriptions = None
        if cfg.subscriptions:
            from repro.pipeline import SubscriptionEngine

            self.subscriptions = SubscriptionEngine(
                journal=self.journal,
                delivery_plan=cfg.subscription_delivery_plan,
                clock=lambda: self.clock.now,
            )
            # A recovered WAL may already hold journaled registrations.
            if self.subscriptions.restore() > 0:
                self.subscriptions.resync(self.index.items())
            self.derivation.subscriptions = self.subscriptions
        self.discovery = DiscoveryStage(
            internet, TierSweep(tiers), self.queue, self.pops, self.exclusions,
            self.predictive, self.scheduler, self.name_feed,
            predictive_enabled=cfg.predictive_enabled,
            predictive_daily_budget=cfg.predictive_daily_budget,
            webprop_refresh_hours=cfg.webprop_refresh_hours,
        )
        self.interrogation = InterrogationStage(
            internet, self.interrogator, self.queue, self.pops, self.exclusions,
            self.scheduler, self.predictive, self.ingest, self.web_scanner,
            frozenset(priority_ports()),
            scanner_id=sid, l7_capacity_per_hour=cfg.l7_capacity_per_hour,
            shard_drain=cfg.shard_drain,
            ingest_batch=cfg.ingest_batch,
            executor=self.executor,
        )
        self.serving = ServingLayer(
            internet, self.journal, self.read_side, self.index,
            reconstruction_cache=self.reconstruction_cache,
            executor=self.executor,
            replication=self.replication,
        )
        self.stages = [
            self.discovery, self.interrogation, self.ingest, self.derivation, self.serving
        ]

        # -- aliases kept for the public API --------------------------------
        self.secondary = self.derivation.secondary
        self.cert_processor = self.derivation.cert_processor
        self.analytics = self.serving.analytics
        self._last_daily = self.clock.now
        self._last_compaction = self.clock.now

    # -- main loop ----------------------------------------------------------

    def run_until(self, t_end: float, tick_hours: float = 6.0) -> None:
        """Advance the platform (and simulated time) to ``t_end``."""
        while self.clock.now < t_end - 1e-9:
            dt = min(tick_hours, t_end - self.clock.now)
            self.tick(dt)

    def tick(self, dt: float = 6.0) -> None:
        """One slice of simulated time through every stage, in stage order."""
        t0 = self.clock.now
        due_names = self.discovery.advance(t0, dt)
        self.interrogation.scan_web_properties(due_names, t0 + dt, self.derivation.mark_dirty)
        self.clock.advance(dt)
        now = self.clock.now
        self.interrogation.advance(now, dt)
        # Pump the bus first — consumers journal too (the certificate
        # processor appends CERT_OBSERVED on TLS messages) — then make the
        # whole tick's writes durable before anything acts on them:
        # replication must not ship and subscriptions must not deliver an
        # event whose covering fsync has not happened yet.
        self.ingest.pump()
        self.journal.flush_commit_windows()
        if self.replication is not None:
            self.replication.pump()
        self.derivation.advance()
        if self.subscriptions is not None:
            self.subscriptions.pump_delivery()
        if now - self._last_daily >= 24.0:
            self._daily_housekeeping(now)
            self._last_daily = now
        if (
            self.compactor is not None
            and now - self._last_compaction >= self.config.compaction_interval_hours
        ):
            self.compact_now()
            self._last_compaction = now

    def _daily_housekeeping(self, now: float) -> None:
        self.ingest.evict_due(now, self.scheduler, self.predictive)
        self.derivation.daily(now)
        self.ingest.pump()
        self.journal.flush_commit_windows()
        if self.replication is not None:
            self.replication.pump()
        self.derivation.advance()
        if self.config.snapshot_daily:
            self.snapshot_now()

    # -- operational controls ------------------------------------------------

    @property
    def tiers(self) -> List:
        return self.discovery.tiers

    @tiers.setter
    def tiers(self, value: List) -> None:
        self.discovery.sweep.tiers = list(value)

    @property
    def observations_processed(self) -> int:
        return self.interrogation.counters["interrogations_run"]

    def trigger_cve_response(
        self, cve_id: str, ports: List[int], duration_days: float = 21.0, cycle_hours: float = 6.0
    ):
        """Scan CVE-relevant ports more frequently for several weeks (§4.1).

        Returns the temporary tier; it retires automatically after
        ``duration_days``.
        """
        from repro.net import ProbeSpace
        from repro.scan.tiers import DiscoveryTier

        space = ProbeSpace.single_range(0, self.internet.space.size, ports)
        tier = DiscoveryTier(
            f"cve-response-{cve_id}", self.internet, space,
            rate_per_hour=space.size / cycle_hours,
            seed=self.config.seed + len(self.discovery.cve_tiers) + 101,
            scanner_id=self.config.scanner_id,
        )
        self.discovery.add_cve_tier(tier, self.clock.now + duration_days * 24.0)
        return tier

    def request_exclusion(self, cidr, organization: str, whois_verified: bool = True):
        """File an operator opt-out (the §8 process) at the current time."""
        return self.exclusions.request_exclusion(
            cidr, organization, self.clock.now, whois_verified=whois_verified
        )

    def ingest_many(self, observations: List[Any]) -> List[Optional[str]]:
        """Bulk-apply pre-built scan observations (the batched write facade).

        Observations are shard-grouped and whole groups ingest through the
        configured executor; the result list is per-observation journal
        event kinds, in input order, bit-identical to submitting one at a
        time.  All group-commit windows are flushed before returning, so
        every acked observation is durable.
        """
        return self.ingest.submit_many(observations, executor=self.executor)

    def request_scan(self, ip_index: int, port: int, transport: str = "tcp") -> None:
        """Real-time user scan requests jump the queue."""
        self.queue.push_new(ip_index, port, transport, source="user", not_before=self.clock.now)

    def fail_over(self, shard: int):
        """Kill one shard's primary journal and promote its most-advanced
        replica (chaos drills / injected node loss).

        Read caches are cleared afterwards: the promoted journal's version
        counters can sit *below* values already cached for the dead
        primary, which lazy version-equality checks cannot distinguish
        from 'unchanged'.  Derived stores (search index, secondary pivots)
        are not rolled back; see DESIGN.md §5e.  Returns the promoted
        :class:`~repro.pipeline.journal.EventJournal`.
        """
        if self.replication is None:
            raise RuntimeError("fail_over requires replication_factor > 0")
        promoted = self.replication.fail_over(shard)
        self.read_side.clear_caches()
        if self.compactor is not None:
            self.compactor.rebind(shard, promoted, promoted.wal.directory)
        return promoted

    def compact_now(self) -> List[Dict[str, Any]]:
        """Run one compaction pass over every shard (and the replicas).

        Returns the per-shard fold reports.  Compaction never changes what
        reads return — it folds superseded history into the cold tier and
        leaves every entity's version counter untouched, so warm read
        caches stay valid.
        """
        if self.compactor is None:
            raise RuntimeError("compact_now requires compaction=True")
        reports = self.compactor.run_once()
        if self.replication is not None and self.config.compaction_replicas:
            self.replication.compact_replicas()
        return reports

    def on_new_endpoints(self, instances: List[ServiceInstance]) -> None:
        """Notify running tiers about endpoints injected mid-run (honeypots)."""
        self.discovery.sweep.notify_new_instances(instances)

    # -- read surfaces (delegating to the serving layer) ---------------------

    def entity_for_ip(self, ip_index: int) -> str:
        return self.serving.entity_for_ip(ip_index)

    def lookup_host(self, ip_index: int, at: Optional[float] = None) -> Dict[str, Any]:
        """The Fast Lookup API: host state by address (and timestamp)."""
        return self.serving.lookup_host(ip_index, at=at)

    def lookup_many(
        self, ip_indexes: List[int], at: Optional[float] = None
    ) -> List[Dict[str, Any]]:
        """Batch host lookup, overlapped across shards by the executor."""
        return self.serving.lookup_many(ip_indexes, at=at)

    def host_view(self, ip_index: int, at: Optional[float] = None):
        """Typed variant of :meth:`lookup_host` (a HostView dataclass)."""
        return self.serving.host_view(ip_index, at=at)

    def certificate_view(self, sha256: str):
        """Typed certificate lookup by fingerprint."""
        return self.serving.certificate_view(sha256)

    def host_history(
        self, ip_index: int, since_seq: int = 0, limit: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """The host-history API: a host's journaled events in order
        (stitched across the compaction fold boundary when enabled)."""
        return self.serving.host_history(ip_index, since_seq=since_seq, limit=limit)

    def search(self, query: str, limit: Optional[int] = None) -> List[str]:
        """The interactive search interface."""
        return self.serving.search(query, limit=limit)

    def search_many(
        self, queries: List[str], limit: Optional[int] = None
    ) -> List[List[str]]:
        """Batch search, overlapped across queries by the executor."""
        return self.serving.search_many(queries, limit=limit)

    # -- standing queries -----------------------------------------------------

    def subscribe(self, query: str, sub_id: Optional[str] = None) -> str:
        """Register a standing query; notifications arrive as the map
        changes (``config.subscriptions=True`` required)."""
        if self.subscriptions is None:
            raise RuntimeError("subscribe requires PlatformConfig(subscriptions=True)")
        return self.subscriptions.subscribe(query, sub_id=sub_id, now=self.clock.now)

    def unsubscribe(self, sub_id: str) -> bool:
        """Cancel a standing query (journaled; survives recovery)."""
        if self.subscriptions is None:
            raise RuntimeError("unsubscribe requires PlatformConfig(subscriptions=True)")
        return self.subscriptions.unsubscribe(sub_id, now=self.clock.now)

    def drain_notifications(self) -> List[Dict[str, Any]]:
        """Pump delivery and hand over every notification that arrived."""
        if self.subscriptions is None:
            return []
        return self.subscriptions.drain_notifications()

    def close(self) -> None:
        """Release the executor's worker pool and close the journal WALs.

        Idempotent; safe to call while reads are in flight (the journal's
        close-once guard serialises against them).  Required for platforms
        built with ``executor="thread"``/``"process"`` so worker threads
        and processes do not outlive the platform.
        """
        if self.replication is not None:
            self.replication.close()
        self.journal.close()
        self.executor.close()

    def snapshot_now(self) -> int:
        """Store the current map into the analytics snapshot store."""
        return self.serving.snapshot_now(self.clock.now)

    def export_snapshot(self, path) -> int:
        """Raw data download: dump the current map as JSON-lines."""
        return self.serving.export_snapshot(path)

    # -- accounting -----------------------------------------------------------

    def traffic_report(self) -> Dict[str, Any]:
        """Scan-traffic and per-stage accounting (the §8 ethics arithmetic
        plus one counter block per pipeline stage and per-shard storage).
        """
        tiers = self.discovery.sweep.probes_by_tier(self.discovery.active_tiers(self.clock.now))
        total = sum(tiers.values())
        hours = max(1e-9, self.clock.now - self._start_time)
        probes_per_hour = total / hours
        per_ip_per_hour = probes_per_hour / self.internet.space.size
        return {
            "probes_by_tier": tiers,
            "total_probes": total,
            "probes_per_hour": probes_per_hour,
            "mean_minutes_between_probes_per_ip": (
                60.0 / per_ip_per_hour if per_ip_per_hour > 0 else float("inf")
            ),
            "stages": {
                "discovery": dict(self.discovery.counters),
                "interrogation": dict(self.interrogation.counters),
                "ingest": dict(self.ingest.counters),
                "derivation": dict(self.derivation.counters),
                "serving": dict(self.serving.counters),
            },
            "queue": self.queue.stats(),
            "scheduler": {
                "tracked_services": self.scheduler.tracked_count,
                "pending_eviction": self.scheduler.pending_count(),
                "evictions": self.scheduler.evictions,
            },
            "shards": {
                "count": self.shard_map.shards,
                "events_per_shard": self.journal.events_per_shard(),
                "entities_per_shard": self.journal.entities_per_shard(),
                "documents_per_shard": self.index.docs_per_shard(),
                "journal_versions_per_shard": self.journal.shard_versions(),
                "index_generations_per_shard": list(self.index.generations()),
            },
            "read_cache": {
                "enabled": self.config.read_cache,
                **self.read_side.cache_report(),
                "query": self.index.cache_report(),
            },
            "storage": {
                "compaction_enabled": self.config.compaction,
                **self.journal.storage_report(),
                "compaction": (
                    self.compactor.stats_report() if self.compactor is not None else None
                ),
            },
            "executor": self.executor.report(),
            "replication": (
                {"enabled": True, **self.replication.report()}
                if self.replication is not None
                else {"enabled": False}
            ),
            "subscriptions": (
                {"enabled": True, **self.subscriptions.report()}
                if self.subscriptions is not None
                else {"enabled": False}
            ),
        }
