"""Vulnerability-notification campaigns (§7.2 EPA case, §9 future work).

The paper reports that direct notifications have "statistically significant
but minimal impact", while the EPA partnership — a regulator with
enforcement authority and on-site follow-up — achieved near-100%
remediation of exposed water-utility HMIs.  This module models notification
campaigns end-to-end: build the recipient list from WHOIS, deliver through
a channel with an empirically-shaped response model, and measure
remediation by re-scanning (the only honest measure).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.simnet import SimulatedInternet
from repro.simnet.clock import DAY

__all__ = ["Exposure", "ResponseModel", "CHANNELS", "NotificationCampaign"]


@dataclass(frozen=True, slots=True)
class Exposure:
    """One notifiable finding."""

    ip_index: int
    port: int
    transport: str
    issue: str
    organization: str
    abuse_contact: str


@dataclass(frozen=True, slots=True)
class ResponseModel:
    """How operators respond to a notification channel.

    Parameters follow the notification literature the paper cites: email
    campaigns move a small fraction of operators; coordinated disclosure
    through CERTs does somewhat better; a regulator with enforcement
    authority (and the budget to show up on site) approaches full
    remediation, but slowly.
    """

    channel: str
    remediation_probability: float
    mean_delay_days: float


CHANNELS: Dict[str, ResponseModel] = {
    "email": ResponseModel("email", remediation_probability=0.12, mean_delay_days=12.0),
    "cert": ResponseModel("cert", remediation_probability=0.30, mean_delay_days=15.0),
    "regulator": ResponseModel("regulator", remediation_probability=0.97, mean_delay_days=25.0),
}


class NotificationCampaign:
    """One campaign: notify, then measure remediation by re-scanning."""

    def __init__(
        self,
        internet: SimulatedInternet,
        model: ResponseModel,
        seed: int = 0,
    ) -> None:
        self.internet = internet
        self.model = model
        self._rng = random.Random(seed)
        self.notified: List[Tuple[Exposure, float]] = []
        self.responded = 0

    def notify(self, exposures: List[Exposure], at: float) -> int:
        """Deliver notifications; operators who respond schedule the fix.

        Remediation is modeled by ending the exposed service's lifetime at
        the operator's (exponentially distributed) fix time — subsequent
        scans then observe the service gone, exactly as a real re-scan
        would.
        """
        delivered = 0
        for exposure in exposures:
            self.notified.append((exposure, at))
            delivered += 1
            if self._rng.random() >= self.model.remediation_probability:
                continue
            delay = self._rng.expovariate(1.0 / (self.model.mean_delay_days * DAY))
            fix_time = at + delay
            inst = self.internet.instance_at(exposure.ip_index, exposure.port, at)
            if inst is not None and fix_time < inst.death:
                inst.death = fix_time
                self.responded += 1
        return delivered

    def remediation_rate(self, now: float) -> float:
        """Fraction of notified exposures no longer serving (re-scan check)."""
        if not self.notified:
            return 0.0
        gone = 0
        for exposure, _ in self.notified:
            if self.internet.instance_at(exposure.ip_index, exposure.port, now) is None:
                gone += 1
        return gone / len(self.notified)

    @property
    def notified_count(self) -> int:
        return len(self.notified)


def exposures_from_platform(platform, labels: Tuple[str, ...] = ("ics",)) -> List[Exposure]:
    """Build a campaign's recipient list from the platform's map + WHOIS."""
    from repro.enrich import ip_index_of_entity

    exposures: List[Exposure] = []
    seen = set()
    for label in labels:
        for entity_id in platform.search(f"labels: {label}"):
            ip_index = ip_index_of_entity(entity_id, platform.internet.space)
            if ip_index is None:
                continue
            view = platform.read_side.lookup(entity_id)
            whois = platform.whois.lookup(ip_index)
            for key, service in view["services"].items():
                port_text, _, transport = key.partition("/")
                binding = (ip_index, int(port_text), transport)
                if binding in seen:
                    continue
                seen.add(binding)
                exposures.append(
                    Exposure(
                        ip_index=ip_index,
                        port=int(port_text),
                        transport=transport,
                        issue=f"{label}:{service.get('service_name')}",
                        organization=whois.organization,
                        abuse_contact=whois.abuse_contact,
                    )
                )
    return exposures
