"""Asynchronously maintained secondary indexes (§5.2).

"Censys asynchronously updates secondary tables that map from certificate
fingerprint to IP address" — these inverted relations power the Fast
Lookup API's pivot queries ("What IP addresses has certificate X been seen
on?") and threat-hunting joins (JA4S and SSH-host-key reuse).  The tables
are fed exclusively from bus messages, never inline with ingestion.

:class:`ShardedSecondaryIndexes` partitions the tables by the host
entity's keyspace shard: one bus subscription routes each message to the
owning shard's :class:`SecondaryIndexes`, and pivot queries merge across
shards with the same sorted order the unsharded tables return — so the
answers are shard-count invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.pipeline.queues import EventBus
from repro.pipeline.sharding import ShardMap

__all__ = ["SecondaryIndexes", "ShardedSecondaryIndexes"]


class SecondaryIndexes:
    """cert/JA4S/SSH-host-key -> host entity mappings.

    ``bus=None`` builds an unsubscribed instance fed by a router (the
    sharded wrapper below); passing a bus preserves the original
    self-subscribing behaviour.
    """

    def __init__(self, bus: Optional[EventBus] = None) -> None:
        self._cert_to_hosts: Dict[str, Set[str]] = {}
        self._ja4s_to_hosts: Dict[str, Set[str]] = {}
        self._hostkey_to_hosts: Dict[str, Set[str]] = {}
        #: first/last sighting per (cert, host) pair.
        self._sightings: Dict[tuple, List[float]] = {}
        self.updates = 0
        if bus is not None:
            bus.subscribe("service_found", self._on_service)
            bus.subscribe("service_changed", self._on_service)

    # -- ingestion (bus handlers) ------------------------------------------

    def _on_service(self, message: Dict[str, Any]) -> None:
        entity_id = message["entity_id"]
        record = message.get("record") or {}
        time = message.get("time", 0.0)
        cert = record.get("tls.certificate_sha256")
        if cert:
            self._cert_to_hosts.setdefault(cert, set()).add(entity_id)
            window = self._sightings.setdefault((cert, entity_id), [time, time])
            window[0] = min(window[0], time)
            window[1] = max(window[1], time)
            self.updates += 1
        ja4s = record.get("tls.ja4s")
        if ja4s:
            self._ja4s_to_hosts.setdefault(ja4s, set()).add(entity_id)
            self.updates += 1
        host_key = record.get("ssh.host_key_sha256")
        if host_key:
            self._hostkey_to_hosts.setdefault(host_key, set()).add(entity_id)
            self.updates += 1

    # -- pivot queries --------------------------------------------------------

    def hosts_with_certificate(self, sha256: str) -> List[str]:
        """'What IP addresses has certificate X been seen on?'"""
        return sorted(self._cert_to_hosts.get(sha256, ()))

    def hosts_with_ja4s(self, ja4s: str) -> List[str]:
        return sorted(self._ja4s_to_hosts.get(ja4s, ()))

    def hosts_with_ssh_key(self, host_key_sha256: str) -> List[str]:
        return sorted(self._hostkey_to_hosts.get(host_key_sha256, ()))

    def certificate_sighting_window(self, sha256: str, entity_id: str) -> Optional[tuple]:
        """(first, last) time the certificate was seen on the host."""
        window = self._sightings.get((sha256, entity_id))
        return tuple(window) if window else None

    def reused_certificates(self, min_hosts: int = 2) -> Dict[str, List[str]]:
        return {
            sha: sorted(hosts)
            for sha, hosts in self._cert_to_hosts.items()
            if len(hosts) >= min_hosts
        }

    def reused_ssh_keys(self, min_hosts: int = 2) -> Dict[str, List[str]]:
        return {
            key: sorted(hosts)
            for key, hosts in self._hostkey_to_hosts.items()
            if len(hosts) >= min_hosts
        }


class ShardedSecondaryIndexes:
    """Per-shard secondary tables behind the unsharded query surface."""

    def __init__(self, bus: EventBus, shard_map: Optional[ShardMap] = None) -> None:
        self.shard_map = shard_map or ShardMap(1)
        self.tables = [SecondaryIndexes() for _ in range(self.shard_map.shards)]
        bus.subscribe("service_found", self._on_service)
        bus.subscribe("service_changed", self._on_service)

    def _on_service(self, message: Dict[str, Any]) -> None:
        self.tables[self.shard_map.shard_of(message["entity_id"])]._on_service(message)

    @property
    def updates(self) -> int:
        return sum(table.updates for table in self.tables)

    # -- merged pivot queries ----------------------------------------------

    def _merged(self, attr: str) -> Dict[str, Set[str]]:
        if len(self.tables) == 1:
            return getattr(self.tables[0], attr)
        merged: Dict[str, Set[str]] = {}
        for table in self.tables:
            for key, hosts in getattr(table, attr).items():
                merged.setdefault(key, set()).update(hosts)
        return merged

    #: The raw tables, merged across shards (kept for callers that iterate
    #: the mappings directly; shard-count invariant up to key order).
    @property
    def _cert_to_hosts(self) -> Dict[str, Set[str]]:
        return self._merged("_cert_to_hosts")

    @property
    def _ja4s_to_hosts(self) -> Dict[str, Set[str]]:
        return self._merged("_ja4s_to_hosts")

    @property
    def _hostkey_to_hosts(self) -> Dict[str, Set[str]]:
        return self._merged("_hostkey_to_hosts")

    def hosts_with_certificate(self, sha256: str) -> List[str]:
        return sorted(
            host for table in self.tables for host in table._cert_to_hosts.get(sha256, ())
        )

    def hosts_with_ja4s(self, ja4s: str) -> List[str]:
        return sorted(
            host for table in self.tables for host in table._ja4s_to_hosts.get(ja4s, ())
        )

    def hosts_with_ssh_key(self, host_key_sha256: str) -> List[str]:
        return sorted(
            host for table in self.tables for host in table._hostkey_to_hosts.get(host_key_sha256, ())
        )

    def certificate_sighting_window(self, sha256: str, entity_id: str) -> Optional[tuple]:
        table = self.tables[self.shard_map.shard_of(entity_id)]
        return table.certificate_sighting_window(sha256, entity_id)

    def reused_certificates(self, min_hosts: int = 2) -> Dict[str, List[str]]:
        return {
            sha: sorted(hosts)
            for sha, hosts in self._cert_to_hosts.items()
            if len(hosts) >= min_hosts
        }

    def reused_ssh_keys(self, min_hosts: int = 2) -> Dict[str, List[str]]:
        return {
            key: sorted(hosts)
            for key, hosts in self._hostkey_to_hosts.items()
            if len(hosts) >= min_hosts
        }
