"""The Censys platform: orchestration of scanning, pipeline, and serving."""

from repro.core.access import (
    TIERS,
    AccessControlledClient,
    AccessDeniedError,
    AccessPolicy,
    RateLimitExceeded,
)
from repro.core.notifications import (
    CHANNELS,
    Exposure,
    NotificationCampaign,
    ResponseModel,
    exposures_from_platform,
)
from repro.core.platform import CensysPlatform, PlatformConfig
from repro.core.scheduler import KnownService, RefreshScheduler
from repro.core.secondary import SecondaryIndexes

__all__ = [
    "CensysPlatform",
    "PlatformConfig",
    "RefreshScheduler",
    "KnownService",
    "AccessPolicy",
    "AccessControlledClient",
    "AccessDeniedError",
    "RateLimitExceeded",
    "TIERS",
    "SecondaryIndexes",
    "Exposure",
    "ResponseModel",
    "NotificationCampaign",
    "CHANNELS",
    "exposures_from_platform",
]
