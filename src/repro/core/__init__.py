"""The Censys platform: orchestration of scanning, pipeline, and serving."""

from repro.core.access import (
    TIERS,
    AccessControlledClient,
    AccessDeniedError,
    AccessPolicy,
    RateLimitExceeded,
)
from repro.core.notifications import (
    CHANNELS,
    Exposure,
    NotificationCampaign,
    ResponseModel,
    exposures_from_platform,
)
from repro.core.platform import CensysPlatform, PlatformConfig
from repro.core.scheduler import KnownService, RefreshScheduler
from repro.core.secondary import SecondaryIndexes, ShardedSecondaryIndexes
from repro.core.stages import (
    DerivationStage,
    DiscoveryStage,
    IngestStage,
    InterrogationStage,
    ServingLayer,
    TierSweep,
)

__all__ = [
    "CensysPlatform",
    "PlatformConfig",
    "RefreshScheduler",
    "KnownService",
    "AccessPolicy",
    "AccessControlledClient",
    "AccessDeniedError",
    "RateLimitExceeded",
    "TIERS",
    "SecondaryIndexes",
    "ShardedSecondaryIndexes",
    "DiscoveryStage",
    "InterrogationStage",
    "IngestStage",
    "DerivationStage",
    "ServingLayer",
    "TierSweep",
    "Exposure",
    "ResponseModel",
    "NotificationCampaign",
    "CHANNELS",
    "exposures_from_platform",
]
