"""Shared plumbing for pipeline stages."""

from __future__ import annotations

import threading
from typing import Dict

__all__ = ["StageCounters"]


class StageCounters(Dict[str, int]):
    """A named counter bag every stage reports into ``traffic_report``.

    A plain dict with an increment helper; keys are created on first
    bump so a stage's schema is visible where the counting happens.
    ``bump`` is lock-guarded: the serving layer's batch endpoints count
    from executor worker threads, and an unguarded read-modify-write
    would drop increments under that interleaving.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._lock = threading.Lock()

    def bump(self, key: str, by: int = 1) -> None:
        with self._lock:
            self[key] = self.get(key, 0) + by
