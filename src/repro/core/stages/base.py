"""Shared plumbing for pipeline stages."""

from __future__ import annotations

from typing import Dict

__all__ = ["StageCounters"]


class StageCounters(Dict[str, int]):
    """A named counter bag every stage reports into ``traffic_report``.

    A plain dict with an increment helper; keys are created on first
    bump so a stage's schema is visible where the counting happens.
    """

    def bump(self, key: str, by: int = 1) -> None:
        self[key] = self.get(key, 0) + by
