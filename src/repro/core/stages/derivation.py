"""The derivation stage: asynchronous enrich + reindex consumers.

Everything downstream of the bus that turns journal state into serving
state lives here: the dirty-set reindexer that keeps the search shards in
sync with the write side, the certificate processing pipeline (CT log,
CRLs, revalidation), and the keyspace-sharded secondary indexes.  All of
it is fed by bus messages — never inline with ingestion.
"""

from __future__ import annotations

from typing import Any, Dict, Set, Union

from repro.certs import CaWorld, CertificateProcessor, CrlRegistry, CtLog, cert_entity_id
from repro.core.secondary import ShardedSecondaryIndexes
from repro.core.stages.base import StageCounters
from repro.pipeline import EventBus, EventJournal, ReadSide
from repro.pipeline.sharding import ShardedJournal
from repro.search import (
    ShardedSearchIndex,
    flatten_certificate_state,
    flatten_host_view,
    flatten_webproperty_view,
)

__all__ = ["DerivationStage"]

#: Write-side topics whose entities must be reindexed for search.
REINDEX_TOPICS = (
    "service_found",
    "service_changed",
    "service_removed",
    "service_unresponsive",
    "host_pseudo_flagged",
)


class DerivationStage:
    """Bus-fed enrichment, certificate processing, and search reindexing."""

    def __init__(
        self,
        journal: Union[EventJournal, ShardedJournal],
        bus: EventBus,
        read_side: ReadSide,
        index: ShardedSearchIndex,
        ca_world: CaWorld,
        crl: CrlRegistry,
        ct_log: CtLog,
        shard_map=None,
    ) -> None:
        self.journal = journal
        self.read_side = read_side
        self.index = index
        self.ca_world = ca_world
        self.crl = crl
        self.ct_log = ct_log
        self._dirty: Set[str] = set()
        self.cert_processor = CertificateProcessor(
            journal, ca_world, crl, ct_log, on_processed=self._index_certificate
        )
        # Subscription order is load-bearing: per-topic delivery follows
        # subscription order, and the seed platform registered the dirty
        # marker, then the TLS handler, then the secondary tables.
        for topic in REINDEX_TOPICS:
            bus.subscribe(topic, self._mark_dirty_message)
        bus.subscribe("service_found", self._on_tls_service)
        bus.subscribe("service_changed", self._on_tls_service)
        self.secondary = ShardedSecondaryIndexes(bus, shard_map)
        #: Optional standing-query engine fed by every reindex/deindex
        #: (attached by the platform when subscriptions are enabled; None
        #: keeps this stage byte-identical to the pre-subscription path).
        self.subscriptions = None
        self.counters = StageCounters(
            reindexed_entities=0,
            deindexed_entities=0,
            certificates_indexed=0,
        )

    # -- bus handlers ---------------------------------------------------------

    def _mark_dirty_message(self, message: Dict[str, Any]) -> None:
        self._dirty.add(message["entity_id"])

    def mark_dirty(self, entity_id: str) -> None:
        self._dirty.add(entity_id)

    def _on_tls_service(self, message: Dict[str, Any]) -> None:
        record = message.get("record") or {}
        if not record.get("tls.certificate_sha256"):
            return
        self.cert_processor.observe_tls_scan(message)

    def _index_certificate(self, cert, time: float) -> None:
        entity = cert_entity_id(cert.sha256)
        doc = flatten_certificate_state(self.journal.reconstruct(entity))
        self.index.put(entity, doc)
        self.counters.bump("certificates_indexed")
        if self.subscriptions is not None:
            self.subscriptions.on_document(entity, doc, now=time)

    # -- the stage interface ---------------------------------------------------

    def advance(self) -> int:
        """Reindex every entity dirtied since the last pass.

        Amortized: reconstructions happen per entity (they must — each
        reads its own journal state), but the index writes go through one
        ``put_many`` per pass and the subscription engine is fed one
        entity-coalesced ``on_documents`` batch.  Both batch paths
        preserve the per-event iteration order of the dirty set, the
        dirty set holds each entity at most once, and puts/deletes target
        disjoint ids within a pass — so documents, ``items()`` order, and
        the notification transition stream (sequence numbers included)
        are identical to the per-event loop; only the per-shard
        generation arithmetic coarsens (one bump per touched shard per
        pass), which query caches treat as extra invalidation, never
        staleness.
        """
        reindexed = 0
        subs = self.subscriptions
        puts: list = []
        sub_updates: list = []
        for entity_id in self._dirty:
            doc = None
            if entity_id.startswith("host:"):
                view = self.read_side.lookup(entity_id)
                if view["services"]:
                    doc = flatten_host_view(view)
            elif entity_id.startswith(("web:", "host6:")):
                view = self.read_side.lookup(entity_id, enrich=False)
                if view["services"]:
                    doc = flatten_webproperty_view(view)
            else:
                continue
            if doc is not None:
                puts.append((entity_id, doc))
                reindexed += 1
            else:
                self.index.delete(entity_id)
                self.counters.bump("deindexed_entities")
            sub_updates.append((entity_id, doc))
        if puts:
            self.index.put_many(puts)
        if subs is not None and sub_updates:
            subs.on_documents(sub_updates)
        self._dirty.clear()
        self.counters.bump("reindexed_entities", reindexed)
        return reindexed

    def daily(self, now: float) -> None:
        """CT polling and certificate revalidation (daily housekeeping)."""
        self.cert_processor.poll_ct(now)
        self.cert_processor.revalidate_all(now)
