"""The serving layer: lookup, search, and analytics surfaces.

The three read surfaces of the paper — the fast lookup API (journal
reconstruction + read-time enrichment), interactive search (the sharded
inverted index), and the analytics snapshot store — behind one object so
the facade, access-control client, and evaluation harness all query
through the same counted entry points.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.certs import cert_entity_id
from repro.core.stages.base import StageCounters
from repro.net import ip_to_str
from repro.pipeline import EventJournal, ReadSide, ReconstructionCache, host_entity_id
from repro.pipeline.sharding import ShardedJournal
from repro.search import ShardedSearchIndex, SnapshotStore
from repro.simnet import SimulatedInternet

__all__ = ["ServingLayer"]


class ServingLayer:
    """Counted query surfaces over the journal, index, and snapshots."""

    def __init__(
        self,
        internet: SimulatedInternet,
        journal: Union[EventJournal, ShardedJournal],
        read_side: ReadSide,
        index: ShardedSearchIndex,
        analytics: Optional[SnapshotStore] = None,
        reconstruction_cache: Optional[ReconstructionCache] = None,
    ) -> None:
        self.internet = internet
        self.journal = journal
        self.read_side = read_side
        self.index = index
        self.analytics = analytics or SnapshotStore()
        #: Versioned memo over journal.reconstruct; None = uncached reads.
        self.reconstruction_cache = reconstruction_cache
        self.counters = StageCounters(
            lookups_served=0,
            searches_served=0,
            snapshots_taken=0,
            documents_exported=0,
        )

    def entity_for_ip(self, ip_index: int) -> str:
        return host_entity_id(ip_to_str(self.internet.space.ip_at(ip_index)))

    # -- the fast lookup API --------------------------------------------------

    def lookup_host(self, ip_index: int, at: Optional[float] = None) -> Dict[str, Any]:
        """Host state by address (and timestamp), enriched at read time."""
        self.counters.bump("lookups_served")
        return self.read_side.lookup(self.entity_for_ip(ip_index), at=at)

    def host_view(self, ip_index: int, at: Optional[float] = None):
        """Typed variant of :meth:`lookup_host` (a HostView dataclass)."""
        from repro.entities import HostView

        return HostView.from_view(self.lookup_host(ip_index, at=at))

    def certificate_view(self, sha256: str):
        """Typed certificate lookup by fingerprint."""
        from repro.entities import CertificateView

        return CertificateView.from_state(self._reconstruct(cert_entity_id(sha256)))

    def _reconstruct(self, entity_id: str) -> Dict[str, Any]:
        if self.reconstruction_cache is not None:
            return self.reconstruction_cache.reconstruct(entity_id)
        return self.journal.reconstruct(entity_id)

    # -- interactive search ----------------------------------------------------

    def search(self, query: str, limit: Optional[int] = None) -> List[str]:
        self.counters.bump("searches_served")
        return self.index.search(query, limit=limit)

    # -- analytics / raw data --------------------------------------------------

    def snapshot_now(self, now: float) -> int:
        """Store the current map into the analytics snapshot store."""
        day = int(now // 24.0)
        docs = [dict(doc) for _doc_id, doc in self.index.items()]
        self.analytics.store(day, docs)
        self.counters.bump("snapshots_taken")
        return len(docs)

    def export_snapshot(self, path) -> int:
        """Raw data download: dump the current map as JSON-lines.

        Stands in for the paper's daily Apache Avro snapshots (academic
        researchers prefer full downloads over APIs, §5.3).
        """
        count = 0
        with Path(path).open("w") as handle:
            for doc_id, doc in self.index.items():
                handle.write(json.dumps({"entity_id": doc_id, **doc},
                                        default=str, sort_keys=True))
                handle.write("\n")
                count += 1
        self.counters.bump("documents_exported", count)
        return count
