"""The serving layer: lookup, search, and analytics surfaces.

The three read surfaces of the paper — the fast lookup API (journal
reconstruction + read-time enrichment), interactive search (the sharded
inverted index), and the analytics snapshot store — behind one object so
the facade, access-control client, and evaluation harness all query
through the same counted entry points.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.certs import cert_entity_id
from repro.core.stages.base import StageCounters
from repro.net import ip_to_str
from repro.pipeline import EventJournal, ReadSide, ReconstructionCache, host_entity_id
from repro.pipeline.executors import SerialExecutor, ShardExecutor
from repro.pipeline.sharding import ShardedJournal
from repro.search import QueryPlan, ShardedSearchIndex, SnapshotStore, compile_query
from repro.simnet import SimulatedInternet

__all__ = ["ServingLayer"]


class ServingLayer:
    """Counted query surfaces over the journal, index, and snapshots."""

    def __init__(
        self,
        internet: SimulatedInternet,
        journal: Union[EventJournal, ShardedJournal],
        read_side: ReadSide,
        index: ShardedSearchIndex,
        analytics: Optional[SnapshotStore] = None,
        reconstruction_cache: Optional[ReconstructionCache] = None,
        executor: Optional[ShardExecutor] = None,
        replication: Optional[Any] = None,
    ) -> None:
        self.internet = internet
        self.journal = journal
        self.read_side = read_side
        self.index = index
        self.analytics = analytics or SnapshotStore()
        #: Versioned memo over journal.reconstruct; None = uncached reads.
        self.reconstruction_cache = reconstruction_cache
        #: Fan-out backend for the batch endpoints (serial = reference).
        self.executor = executor or SerialExecutor()
        #: Bounded-staleness replica reads (a ReplicationManager); None or
        #: a manager with serve_reads=False keeps every read on the primary.
        self.replication = replication
        self.counters = StageCounters(
            lookups_served=0,
            replica_lookups_served=0,
            searches_served=0,
            histories_served=0,
            snapshots_taken=0,
            documents_exported=0,
        )

    def entity_for_ip(self, ip_index: int) -> str:
        return host_entity_id(ip_to_str(self.internet.space.ip_at(ip_index)))

    # -- the fast lookup API --------------------------------------------------

    def lookup_host(self, ip_index: int, at: Optional[float] = None) -> Dict[str, Any]:
        """Host state by address (and timestamp), enriched at read time.

        With replication enabled for reads, an eligible replica (within
        the staleness bound AND holding the entity at the primary's exact
        version — so the answer is bit-identical and read-your-writes
        holds) serves the lookup; otherwise the primary does.
        """
        self.counters.bump("lookups_served")
        entity_id = self.entity_for_ip(ip_index)
        if self.replication is not None:
            replica = self.replication.replica_for_read(entity_id)
            if replica is not None:
                self.counters.bump("replica_lookups_served")
                return self.read_side.lookup(entity_id, at=at, journal=replica)
        return self.read_side.lookup(entity_id, at=at)

    def host_view(self, ip_index: int, at: Optional[float] = None):
        """Typed variant of :meth:`lookup_host` (a HostView dataclass)."""
        from repro.entities import HostView

        return HostView.from_view(self.lookup_host(ip_index, at=at))

    def certificate_view(self, sha256: str):
        """Typed certificate lookup by fingerprint."""
        from repro.entities import CertificateView

        return CertificateView.from_state(self._reconstruct(cert_entity_id(sha256)))

    def _reconstruct(self, entity_id: str) -> Dict[str, Any]:
        if self.reconstruction_cache is not None:
            return self.reconstruction_cache.reconstruct(entity_id)
        return self.journal.reconstruct(entity_id)

    def lookup_many(
        self, ip_indexes: List[int], at: Optional[float] = None
    ) -> List[Dict[str, Any]]:
        """Batch host lookup: overlap independent requests across shards.

        Requests are grouped by owning journal shard and each group is
        reconstructed through the executor, so shard groups proceed
        concurrently under the thread backend while results come back in
        input order.  Serial executor (the default) degenerates to the
        plain loop, bit-identical to calling :meth:`lookup_host` N times.
        """
        entity_ids = [self.entity_for_ip(i) for i in ip_indexes]
        self.counters.bump("lookups_served", len(entity_ids))
        if self.executor.inline or len(entity_ids) <= 1:
            return [self.read_side.lookup(eid, at=at) for eid in entity_ids]

        shard_of = getattr(self.journal, "shard_of", None)
        groups: Dict[int, List[int]] = {}
        for pos, eid in enumerate(entity_ids):
            shard = shard_of(eid) if shard_of is not None else 0
            groups.setdefault(shard, []).append(pos)

        def _lookup_group(positions: List[int]) -> List[tuple]:
            return [
                (pos, self.read_side.lookup(entity_ids[pos], at=at))
                for pos in positions
            ]

        results: List[Any] = [None] * len(entity_ids)
        for chunk in self.executor.map_shards(
            _lookup_group, [(positions,) for positions in groups.values()]
        ):
            for pos, view in chunk:
                results[pos] = view
        return results

    def host_history(
        self,
        ip_index: int,
        since_seq: int = 0,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """The host-history API: the entity's journaled events in order.

        Serves from the stitched event stream — compaction may have folded
        old history into the cold tier, and this surface transparently
        reads across the fold boundary, so the answer is identical with
        and without compaction.  Each row is a JSON-able dict.
        """
        self.counters.bump("histories_served")
        entity_id = self.entity_for_ip(ip_index)
        events = self.journal.events_for(entity_id, since_seq=since_seq)
        if limit is not None:
            events = events[:limit]
        return [
            {
                "entity_id": event.entity_id,
                "seq": event.seq,
                "time": event.time,
                "kind": event.kind,
                "payload": event.payload,
            }
            for event in events
        ]

    # -- interactive search ----------------------------------------------------

    def search(
        self, query: Union[str, "QueryPlan"], limit: Optional[int] = None
    ) -> List[str]:
        """Interactive search; accepts query text or a pre-compiled plan
        (strings compile once through the process-wide plan cache)."""
        self.counters.bump("searches_served")
        return self.index.search(query, limit=limit)

    def search_many(
        self, queries: List[Union[str, "QueryPlan"]], limit: Optional[int] = None
    ) -> List[List[str]]:
        """Batch search: overlap independent queries through the executor.

        Each query's own scatter-gather runs inline inside the worker
        (the executors' nested-depth guard prevents pool starvation), so
        parallelism comes from overlapping whole queries rather than
        nesting fan-outs.  Results come back in input order.  Queries are
        compiled before the fan-out, so workers receive plans, not text.
        """
        self.counters.bump("searches_served", len(queries))
        plans = [compile_query(q) for q in queries]
        if self.executor.inline or len(plans) <= 1:
            return [self.index.search(p, limit=limit) for p in plans]

        def _one(plan: "QueryPlan") -> List[str]:
            return self.index.search(plan, limit=limit)

        return self.executor.map_shards(_one, [(p,) for p in plans])

    # -- analytics / raw data --------------------------------------------------

    def snapshot_now(self, now: float) -> int:
        """Store the current map into the analytics snapshot store."""
        day = int(now // 24.0)
        docs = [dict(doc) for _doc_id, doc in self.index.items()]
        self.analytics.store(day, docs)
        self.counters.bump("snapshots_taken")
        return len(docs)

    def export_snapshot(self, path) -> int:
        """Raw data download: dump the current map as JSON-lines.

        Stands in for the paper's daily Apache Avro snapshots (academic
        researchers prefer full downloads over APIs, §5.3).
        """
        count = 0
        with Path(path).open("w") as handle:
            for doc_id, doc in self.index.items():
                handle.write(json.dumps({"entity_id": doc_id, **doc},
                                        default=str, sort_keys=True))
                handle.write("\n")
                count += 1
        self.counters.bump("documents_exported", count)
        return count
