"""The ingest stage: the CQRS write side over the sharded journal.

Minimal processing at ingestion time (the paper's write-side rule):
observations become journal events through the
:class:`~repro.pipeline.write_side.WriteSideProcessor`, follow-up work is
published to the bus, and :meth:`pump` delivers it to the asynchronous
consumers once per tick.  Eviction of services staged past the retention
window runs here too — removals are write-side commands.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.core.scheduler import RefreshScheduler
from repro.core.stages.base import StageCounters
from repro.pipeline import EventBus, EventJournal, ScanObservation, WriteSideProcessor
from repro.pipeline.sharding import ShardedJournal
from repro.scan import PredictiveEngine

__all__ = ["IngestStage"]


class IngestStage:
    """Observations in, journal events and bus messages out."""

    def __init__(
        self,
        journal: Union[EventJournal, ShardedJournal],
        bus: EventBus,
        write_side: WriteSideProcessor,
    ) -> None:
        self.journal = journal
        self.bus = bus
        self.write_side = write_side
        self.counters = StageCounters(
            observations_ingested=0,
            events_journaled=0,
            #: Events journaled through the batched fast path (submit_many).
            batched_events=0,
            #: WAL fsyncs taken during batched ingest — each one covers a
            #: whole group-commit window, so batched_events / group_commits
            #: is the realized fsync amortization.
            group_commits=0,
            messages_pumped=0,
            evictions=0,
        )

    # -- write path ----------------------------------------------------------

    def submit(self, obs: ScanObservation) -> Optional[str]:
        """Apply one observation; returns the journal event kind (or None)."""
        before = self.journal.stats.events
        kind = self.write_side.process(obs)
        self.counters.bump("observations_ingested")
        self.counters.bump("events_journaled", self.journal.stats.events - before)
        return kind

    def submit_many(
        self,
        observations: Sequence[ScanObservation],
        executor: Optional[object] = None,
    ) -> List[Optional[str]]:
        """Batched ingest through ``WriteSideProcessor.submit_many``.

        Bit-identical to calling :meth:`submit` per observation; with a
        fault injector attached it literally does that (retry and crash
        schedules are defined against per-observation processing).
        """
        observations = list(observations)
        if not observations:
            return []
        if self.write_side.faults is not None:
            return [self.submit(obs) for obs in observations]
        before_events = self.journal.stats.events
        before_fsyncs = self._wal_fsyncs()
        kinds = self.write_side.submit_many(observations, executor=executor)
        journaled = self.journal.stats.events - before_events
        self.counters.bump("observations_ingested", len(observations))
        self.counters.bump("events_journaled", journaled)
        self.counters.bump("batched_events", journaled)
        self.counters.bump("group_commits", self._wal_fsyncs() - before_fsyncs)
        return kinds

    def _wal_fsyncs(self) -> int:
        journals = getattr(self.journal, "journals", None)
        if journals is None:
            journals = [self.journal]
        return sum(j.wal.stats.fsyncs for j in journals if j.wal is not None)

    def remove_service(self, entity_id: str, key: str, time: float) -> bool:
        return self.write_side.remove_service(entity_id, key, time)

    # -- asynchronous delivery ------------------------------------------------

    def pump(self) -> int:
        """Deliver queued bus messages to the derivation-side consumers."""
        delivered = self.bus.pump()
        self.counters.bump("messages_pumped", delivered)
        return delivered

    # -- retention ------------------------------------------------------------

    def evict_due(self, now: float, scheduler: RefreshScheduler, predictive: PredictiveEngine) -> int:
        """Remove services staged past the eviction window (daily work).

        Cache coherence: every successful eviction journals a
        ``SERVICE_REMOVED`` event, which bumps the entity's (and owning
        shard's) version counter — the read-path caches invalidate on the
        next lookup with no extra hooks here.  A no-op removal (service
        already gone) appends nothing and correctly leaves versions — and
        therefore cached reconstructions — untouched.
        """
        from repro.pipeline.events import service_key

        evicted = 0
        for known in scheduler.due_evictions(now):
            self.remove_service(known.entity_id, service_key(known.port, known.transport), now)
            predictive.remember_evicted(known.ip_index, known.port, known.transport, now)
            scheduler.forget(known.ip_index, known.port, known.transport)
            evicted += 1
        self.counters.bump("evictions", evicted)
        return evicted
