"""The interrogation stage: L7 handshakes over queued candidates.

Drains the scan queue (globally or shard-by-shard), runs protocol
detection / full handshakes / refresh fast-paths against the simulated
Internet, and hands the resulting observations to the ingest stage.  Also
owns web-property scanning (HTTP over names plus name-fed IPv6), which
produces observations through the same ingest path.
"""

from __future__ import annotations

import zlib
from typing import List, Optional

from repro.core.scheduler import RefreshScheduler
from repro.core.stages.base import StageCounters
from repro.core.stages.ingest import IngestStage
from repro.net import ip_to_str
from repro.pipeline import ScanObservation, host_entity_id
from repro.protocols import Interrogator
from repro.scan import PredictiveEngine, ScanCandidate, ScanQueue
from repro.scan.exclusions import ExclusionList
from repro.scan.pop import PointOfPresence
from repro.simnet import SimulatedInternet
from repro.webprops import WebPropertyScanner

__all__ = ["InterrogationStage"]


class InterrogationStage:
    """Turns ready candidates into scan observations."""

    def __init__(
        self,
        internet: SimulatedInternet,
        interrogator: Interrogator,
        queue: ScanQueue,
        pops: List[PointOfPresence],
        exclusions: ExclusionList,
        scheduler: RefreshScheduler,
        predictive: PredictiveEngine,
        ingest: IngestStage,
        web_scanner: WebPropertyScanner,
        priority_port_set: frozenset,
        *,
        scanner_id: str = "censys",
        l7_capacity_per_hour: Optional[int] = None,
        shard_drain: str = "merged",
        ingest_batch: int = 1,
        executor: Optional[object] = None,
    ) -> None:
        self.internet = internet
        self.interrogator = interrogator
        self.queue = queue
        self.pops = pops
        self.exclusions = exclusions
        self.scheduler = scheduler
        self.predictive = predictive
        self.ingest = ingest
        self.web_scanner = web_scanner
        self.priority_port_set = priority_port_set
        self.scanner_id = scanner_id
        self.l7_capacity_per_hour = l7_capacity_per_hour
        #: "merged" drains the queue in global order (shard-count
        #: invariant); "round_robin" drains shard-by-shard with a per-shard
        #: budget — the independent-worker scheduling mode.
        self.shard_drain = shard_drain
        #: Max observations per batched ingest call; 1 = the per-event
        #: reference path.  The batched drain is engineered bit-identical
        #: (see :meth:`_interrogate_batched`), so this is pure amortization.
        self.ingest_batch = ingest_batch
        #: Shard executor handed to ``submit_many`` for parallel ingest.
        self.executor = executor
        self.counters = StageCounters(
            interrogations_run=0,
            connect_failures=0,
            refresh_fastpaths=0,
            excluded_purged=0,
            web_scans=0,
            ipv6_scans=0,
        )

    def entity_for_ip(self, ip_index: int) -> str:
        return host_entity_id(ip_to_str(self.internet.space.ip_at(ip_index)))

    # -- the stage interface -------------------------------------------------

    def advance(self, now: float, dt: float) -> int:
        """Drain and interrogate ready candidates; returns work done."""
        limit = None
        if self.l7_capacity_per_hour is not None:
            limit = int(self.l7_capacity_per_hour * dt)
        if self.shard_drain == "round_robin" and self.queue.shards > 1:
            candidates = self._drain_round_robin(now, limit)
        else:
            candidates = self.queue.pop_ready(now, limit=limit)
        if self.ingest_batch > 1 and len(candidates) > 1:
            self._interrogate_batched(candidates, now, dt)
        else:
            for candidate in candidates:
                self._interrogate(candidate, min(max(candidate.not_before, now - dt), now))
        return len(candidates)

    def _drain_round_robin(self, now: float, limit: Optional[int]) -> List[ScanCandidate]:
        """Per-shard budgets: each shard drains independently this tick."""
        shards = self.queue.shards
        per_shard = None if limit is None else max(1, limit // shards)
        candidates: List[ScanCandidate] = []
        for shard in range(shards):
            candidates.extend(self.queue.pop_ready_shard(shard, now, limit=per_shard))
        return candidates

    # -- single-candidate pipeline -------------------------------------------

    def _pop_for(self, candidate: ScanCandidate) -> PointOfPresence:
        if candidate.source == "refresh":
            untried = self.scheduler.untried_pop(
                candidate.ip_index, candidate.port, candidate.transport,
                [p.name for p in self.pops],
            )
            if untried is not None:
                for pop in self.pops:
                    if pop.name == untried:
                        return pop
        # Rotate the serving PoP over time so an endpoint invisible from one
        # vantage (geoblocking, routing anomaly) is retried from the others.
        day = int(candidate.not_before // 24.0)
        return self.pops[(candidate.ip_index + candidate.port + day) % len(self.pops)]

    def _observe(self, candidate: ScanCandidate, t: float):
        """Connect and interrogate one candidate; no journal interaction."""
        pop = self._pop_for(candidate)
        conn = self.internet.connect(
            candidate.ip_index, candidate.port, t, pop.vantage,
            transport=candidate.transport, scanner=self.scanner_id,
        )
        if conn is None:
            from repro.protocols.interrogate import InterrogationResult

            result = InterrogationResult(port=candidate.port, transport=candidate.transport, success=False)
            self.counters.bump("connect_failures")
        elif candidate.expected_protocol:
            result = self.interrogator.refresh(conn, candidate.expected_protocol)
            self.counters.bump("refresh_fastpaths")
        else:
            result = self.interrogator.interrogate(conn)
        entity = self.entity_for_ip(candidate.ip_index)
        obs = ScanObservation(
            entity_id=entity, time=t, port=candidate.port,
            transport=candidate.transport, result=result, source=candidate.source,
        )
        return pop, entity, obs

    def _bookkeep(self, candidate: ScanCandidate, t: float, pop, entity: str, obs) -> None:
        """The post-ingest scheduler/predictive feedback for one candidate."""
        result = obs.result
        self.counters.bump("interrogations_run")
        binding = (candidate.ip_index, candidate.port, candidate.transport)
        if self.ingest.journal.peek_current(entity)["meta"].get("pseudo_host"):
            # Filtered host: stop refreshing its bindings and keep its noise
            # out of the predictive models.
            self.scheduler.forget(*binding)
            return
        if result.success and result.service_name:
            self.scheduler.service_seen(
                entity, candidate.ip_index, candidate.port, candidate.transport,
                result.protocol, t,
            )
            self.predictive.forget_evicted(*binding)
        elif self.scheduler.known(*binding) is not None:
            self.scheduler.refresh_failed(
                candidate.ip_index, candidate.port, candidate.transport, pop.name, t
            )
        if candidate.port not in self.priority_port_set and candidate.transport == "tcp":
            # Only fingerprint-validated services train the models: raw
            # unidentified responders (middleboxes, pseudo-services) would
            # otherwise send the sweeps chasing noise.
            if result.protocol is not None:
                self.predictive.observe(candidate.ip_index, candidate.port, True)
            elif not result.success:
                self.predictive.observe(candidate.ip_index, candidate.port, False)

    def _interrogate(self, candidate: ScanCandidate, t: float) -> None:
        if self.exclusions.is_excluded(candidate.ip_index, t):
            self._purge_excluded(candidate.ip_index, t)
            return
        pop, entity, obs = self._observe(candidate, t)
        self.ingest.submit(obs)
        self._bookkeep(candidate, t, pop, entity, obs)

    def _interrogate_batched(self, candidates: List[ScanCandidate], now: float, dt: float) -> None:
        """Chunked drain: identical work, one ``submit_many`` per chunk.

        Equality with the per-candidate loop is guaranteed by the flush
        rules: a chunk never holds two candidates of the same entity (so
        every cross-candidate feedback loop — scheduler ``untried_pop`` /
        ``service_seen`` / ``refresh_failed``, the pseudo-host check, the
        journal head used for stale-drops — sees exactly the state the
        reference would), and an excluded candidate's purge flushes the
        chunk first because it both reads and writes journal state.
        """
        chunk: List[tuple] = []
        chunk_entities: set = set()

        def flush() -> None:
            if not chunk:
                return
            self.ingest.submit_many([obs for _c, _t, _p, _e, obs in chunk],
                                    executor=self.executor)
            for candidate, t, pop, entity, obs in chunk:
                self._bookkeep(candidate, t, pop, entity, obs)
            chunk.clear()
            chunk_entities.clear()

        for candidate in candidates:
            t = min(max(candidate.not_before, now - dt), now)
            if self.exclusions.is_excluded(candidate.ip_index, t):
                flush()
                self._purge_excluded(candidate.ip_index, t)
                continue
            entity = self.entity_for_ip(candidate.ip_index)
            if entity in chunk_entities or len(chunk) >= self.ingest_batch:
                flush()
            pop, entity, obs = self._observe(candidate, t)
            chunk.append((candidate, t, pop, entity, obs))
            chunk_entities.add(entity)
        flush()

    def _purge_excluded(self, ip_index: int, t: float) -> None:
        """Drop everything known about a newly opted-out address."""
        entity = self.entity_for_ip(ip_index)
        state = self.ingest.journal.peek_current(entity)
        for key in list(state["services"]):
            self.ingest.remove_service(entity, key, t)
            port_text, _, transport = key.partition("/")
            self.scheduler.forget(ip_index, int(port_text), transport)
            self.predictive.forget_evicted(ip_index, int(port_text), transport)
        self.counters.bump("excluded_purged")

    # -- web properties -------------------------------------------------------

    def scan_web_properties(self, names: List[str], now: float, mark_dirty) -> None:
        """Scan due web-property names (and their name-fed IPv6 hosts)."""
        for name in names:
            pop = self.pops[zlib.crc32(name.encode()) % len(self.pops)]
            obs = self.web_scanner.scan(name, now, pop.vantage)
            self.ingest.submit(obs)
            self.counters.bump("web_scans")
            self._scan_ipv6_of_name(name, now, pop, mark_dirty)

    def _scan_ipv6_of_name(self, name: str, now: float, pop: PointOfPresence, mark_dirty) -> None:
        """Track and scan IPv6 addresses found through DNS of known names
        (§4.1 — no comprehensive IPv6 scanning, only name-fed)."""
        address = self.internet.resolve_name_v6(name, now)
        if address is None:
            return
        conn = self.internet.connect_v6(
            address, now, pop.vantage, scanner=self.scanner_id, sni=name
        )
        if conn is None:
            result = None
        else:
            result = self.interrogator.interrogate(conn)
        if result is None or not result.success:
            from repro.protocols.interrogate import InterrogationResult

            result = InterrogationResult(port=conn.port if conn else 443, transport="tcp", success=False)
        obs = ScanObservation(
            entity_id=f"host6:{address}", time=now, port=result.port,
            transport="tcp", result=result, source="name",
        )
        self.ingest.submit(obs)
        self.counters.bump("ipv6_scans")
        mark_dirty(f"host6:{address}")
