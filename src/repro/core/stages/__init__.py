"""The platform decomposed into independently schedulable pipeline stages.

Production Censys is not one loop: discovery, interrogation, the CQRS
write side, asynchronous derivation, and serving each scale on their own
(§4–5).  This package mirrors that decomposition.  Each stage owns its
components, exposes a narrow ``advance``-style interface plus a
``counters()`` dict, and is composed — not subclassed — by the
:class:`~repro.core.platform.CensysPlatform` facade.

Stage graph (per tick)::

    DiscoveryStage ──candidates──▶ ScanQueue ──▶ InterrogationStage
                                                      │ observations
                                                      ▼
    ServingLayer ◀── SearchIndex ◀── DerivationStage ◀── IngestStage
        │                 ▲              (bus consumers)   (write side,
        ▼                 └── reindex                       sharded journal)
    lookups / search / analytics
"""

from repro.core.stages.base import StageCounters
from repro.core.stages.derivation import DerivationStage
from repro.core.stages.discovery import DiscoveryStage, TierSweep
from repro.core.stages.ingest import IngestStage
from repro.core.stages.interrogation import InterrogationStage
from repro.core.stages.serving import ServingLayer

__all__ = [
    "StageCounters",
    "DiscoveryStage",
    "TierSweep",
    "InterrogationStage",
    "IngestStage",
    "DerivationStage",
    "ServingLayer",
]
