"""The discovery stage: candidate generation for L7 interrogation.

Owns everything that decides *what to look at next*: the permutation
discovery tiers (plus temporary CVE-response tiers), the predictive
engine's proposals and re-injections, due refreshes from the scheduler,
and web-property name discovery.  Output is uniform — candidates pushed
into the :class:`~repro.scan.queue.ScanQueue` (and a due-name list for the
interrogation stage) — so interrogation can drain independently.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.scheduler import RefreshScheduler
from repro.core.stages.base import StageCounters
from repro.scan import PredictiveEngine, ScanQueue
from repro.scan.exclusions import ExclusionList
from repro.scan.pop import PointOfPresence
from repro.simnet import SimulatedInternet
from repro.simnet.instances import ServiceInstance
from repro.webprops import NameFeed

__all__ = ["TierSweep", "DiscoveryStage"]


class TierSweep:
    """Walks a set of discovery tiers, one PoP-selection policy per sweep.

    The shared tier-walking mechanism: the Censys discovery stage rotates
    probes across its PoPs per tick, while the baseline engines (single
    vantage, no queue) run the same sweep with a fixed PoP.  Both iterate
    tiers in registration order, so hit order — and therefore every
    downstream RNG draw — is identical to the pre-stage inline loops.
    """

    def __init__(self, tiers: Optional[List] = None) -> None:
        self.tiers = list(tiers or [])

    def add(self, tier) -> None:
        self.tiers.append(tier)

    def sweep(self, tiers: List, t0: float, dt: float, pop_for_tier) -> Iterator[Tuple]:
        """Yield (tier, hit) over ``tiers``; ``pop_for_tier(i)`` picks the PoP."""
        for i, tier in enumerate(tiers):
            pop = pop_for_tier(i)
            for hit in tier.advance(t0, dt, pop):
                yield tier, hit

    def notify_new_instances(self, instances: List[ServiceInstance]) -> None:
        """Tell permanent tiers about endpoints injected mid-run."""
        for tier in self.tiers:
            for inst in instances:
                tier.notify_new_instance(inst)

    def probes_by_tier(self, tiers: Optional[List] = None) -> Dict[str, int]:
        return {tier.name: tier.probes_sent for tier in (tiers if tiers is not None else self.tiers)}


class DiscoveryStage:
    """Feeds the scan queue from tiers, models, refreshes, and name feeds."""

    def __init__(
        self,
        internet: SimulatedInternet,
        sweep: TierSweep,
        queue: ScanQueue,
        pops: List[PointOfPresence],
        exclusions: ExclusionList,
        predictive: PredictiveEngine,
        scheduler: RefreshScheduler,
        name_feed: NameFeed,
        *,
        predictive_enabled: bool = True,
        predictive_daily_budget: int = 4000,
        webprop_refresh_hours: float = 720.0,
    ) -> None:
        self.internet = internet
        self.sweep = sweep
        self.queue = queue
        self.pops = pops
        self.exclusions = exclusions
        self.predictive = predictive
        self.scheduler = scheduler
        self.name_feed = name_feed
        self.predictive_enabled = predictive_enabled
        self.predictive_daily_budget = predictive_daily_budget
        self.webprop_refresh_hours = webprop_refresh_hours
        #: Temporary fast tiers spun up for CVE response: (tier, expires).
        self.cve_tiers: List[Tuple] = []
        #: name -> next refresh time.
        self._web_refresh: Dict[str, float] = {}
        self._tick_counter = 0
        self.counters = StageCounters(
            candidates_enqueued=0,
            candidates_excluded=0,
            predictive_proposed=0,
            reinjections=0,
            refreshes_scheduled=0,
            web_names_due=0,
        )

    # -- tier management ----------------------------------------------------

    @property
    def tiers(self) -> List:
        return self.sweep.tiers

    def add_cve_tier(self, tier, expires: float) -> None:
        self.cve_tiers.append((tier, expires))

    def active_tiers(self, t0: float) -> List:
        """Permanent tiers plus unexpired CVE-response tiers (pruning)."""
        self.cve_tiers = [(tier, expiry) for tier, expiry in self.cve_tiers if expiry > t0]
        return list(self.sweep.tiers) + [tier for tier, _ in self.cve_tiers]

    # -- the stage interface -------------------------------------------------

    def advance(self, t0: float, dt: float) -> List[str]:
        """One discovery slice; returns web-property names due for scanning.

        Order matters and is preserved from the original platform loop:
        tier sweeps, predictive proposals, re-injections, due refreshes
        (at ``t0 + dt``), then name-feed polling — each consuming the same
        RNG stream as the pre-refactor inline code.
        """
        self._tick_counter += 1
        counters = self.counters
        queue = self.queue
        pops = self.pops
        tick = self._tick_counter
        for tier, hit in self.sweep.sweep(
            self.active_tiers(t0), t0, dt,
            lambda i: pops[(tick + i) % len(pops)],
        ):
            if self.exclusions.is_excluded(hit.target.ip_index, hit.probe_time):
                counters.bump("candidates_excluded")
                continue
            if queue.push_new(
                hit.target.ip_index,
                hit.target.port,
                tier.transport,
                source="discovery",
                not_before=hit.probe_time + 0.1,
            ):
                counters.bump("candidates_enqueued")
        if self.predictive_enabled:
            self._predictive_work(t0, dt)
        now = t0 + dt
        self._schedule_refreshes(now)
        return self._discover_web_names(now)

    def _predictive_work(self, t0: float, dt: float) -> None:
        budget = max(1, int(self.predictive_daily_budget * dt / 24.0))
        for prediction in self.predictive.propose(budget):
            if self.queue.push_new(
                prediction.ip_index, prediction.port, "tcp",
                source="predictive", not_before=t0 + 0.05,
            ):
                self.counters.bump("predictive_proposed")
        for ip_index, port, transport in self.predictive.reinjections(t0):
            if self.queue.push_new(
                ip_index, port, transport, source="reinject", not_before=t0 + 0.05
            ):
                self.counters.bump("reinjections")

    def _schedule_refreshes(self, now: float) -> None:
        for known in self.scheduler.due_refreshes(now):
            self.queue.push_new(
                known.ip_index, known.port, known.transport,
                source="refresh", not_before=known.next_refresh,
                expected_protocol=known.protocol,
            )
            self.scheduler.mark_refresh_dispatched(known.ip_index, known.port, known.transport, now)
            self.counters.bump("refreshes_scheduled")

    def _discover_web_names(self, now: float) -> List[str]:
        """Poll the name feed; return names due for a web-property scan."""
        for discovered in self.name_feed.poll(now):
            self._web_refresh.setdefault(discovered.name, now)
        due = [name for name, when in self._web_refresh.items() if when <= now]
        for name in due:
            self._web_refresh[name] = now + self.webprop_refresh_hours
        self.counters.bump("web_names_due", len(due))
        return due
