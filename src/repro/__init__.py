"""repro — a reproduction of "Censys: A Map of Internet Hosts and Services".

The package implements the full Censys architecture (SIGCOMM 2025) over a
deterministic simulated IPv4 Internet:

* :mod:`repro.simnet` — the synthetic Internet substrate;
* :mod:`repro.net` — addresses, CIDRs, scan permutations, probe spaces;
* :mod:`repro.protocols` — 58 protocol models, LZR-style detection;
* :mod:`repro.scan` — discovery tiers, PoPs, prediction, exclusions;
* :mod:`repro.pipeline` — the CQRS journal/write/read sides;
* :mod:`repro.entities` — typed views and the dataset field schema;
* :mod:`repro.enrich` — fingerprints, GeoIP/WHOIS, CVE derivation;
* :mod:`repro.certs` — the synthetic WebPKI and certificate pipeline;
* :mod:`repro.webprops` — name-addressed web properties;
* :mod:`repro.search` — query language, index, analytics snapshots;
* :mod:`repro.core` — the orchestrated platform and access layers;
* :mod:`repro.engines` — the engine-comparison harness and baselines;
* :mod:`repro.eval` — the paper's evaluation experiments.

Entry points: :func:`repro.simnet.build_simnet` and
:class:`repro.core.CensysPlatform`.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
