"""The Bigtable-style event journal with snapshots and storage tiering.

Rows are keyed by (entity id, monotonic sequence number).  The journal
stores delta-encoded events plus periodic state snapshots; reconstruction
finds the latest snapshot at or before the queried time and replays the
events after it.  Snapshot-or-older rows migrate from the (simulated) SSD
tier to the HDD tier, mirroring how Censys keeps only the hot tail of each
entity's history on fast storage.

Durability (opt-in): constructing the journal with a
:class:`~repro.pipeline.wal.WriteAheadLog` makes every committed batch of
events durable before control returns to the caller, and
:meth:`EventJournal.recover` rebuilds byte-identical state from the WAL
directory after a crash — snapshots are *regenerated* during replay (the
snapshot cadence is deterministic in the event sequence) and cross-checked
against the sidecar copies written before the crash.  The default
(``wal=None``) keeps the original purely in-memory behaviour.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, NamedTuple, Optional, Tuple

from repro.pipeline.events import Event
from repro.pipeline.state import apply_event, new_entity_state, snapshot_state
from repro.pipeline.wal import WalCorruptionError, WriteAheadLog

__all__ = ["JournalStats", "EventJournal", "CompactionAnchor"]


@dataclass(slots=True)
class JournalStats:
    """Storage accounting (bytes are modeled, not measured)."""

    events: int = 0
    snapshots: int = 0
    event_bytes: int = 0
    snapshot_bytes: int = 0
    ssd_bytes: int = 0
    hdd_bytes: int = 0
    #: Bytes aged out of the hot/warm tiers into columnar cold storage.
    cold_bytes: int = 0
    #: Events (and their modeled bytes) still held as Python objects in RAM.
    #: Compaction folds the covered prefix out of RAM, so these plateau
    #: under a long run while ``events``/``event_bytes`` keep growing.
    resident_events: int = 0
    resident_event_bytes: int = 0
    replayed_events: int = 0
    #: Durability accounting (all zero for in-memory journals).
    wal_batches: int = 0
    wal_events: int = 0
    recovered_events: int = 0
    torn_records_discarded: int = 0

    @property
    def total_bytes(self) -> int:
        return self.event_bytes + self.snapshot_bytes


@dataclass(slots=True)
class _EntityLog:
    """Per-entity journal rows."""

    events: List[Event] = field(default_factory=list)
    #: (seq_after, time, state) triples; a snapshot at index i reflects all
    #: events with seq < seq_after.
    snapshots: List[Tuple[int, float, Dict[str, Any]]] = field(default_factory=list)
    next_seq: int = 0
    #: Sequence numbers at or below this are on the HDD tier.
    hdd_watermark: int = -1
    #: Materialized current state (the hot serving row).
    current: Optional[Dict[str, Any]] = None
    #: Sequence number of ``events[0]``.  Non-zero once compaction has
    #: folded the covered prefix out of RAM; ``events[i]`` then has
    #: sequence ``base_seq + i`` and older history lives in the cold tier.
    base_seq: int = 0


class CompactionAnchor(NamedTuple):
    """The fold boundary for one entity.

    ``base`` is the first sequence number that stays in RAM; the anchor
    snapshot reflects every event with seq < base.  ``synthetic`` anchors
    were materialized by the compactor (no cadence snapshot landed exactly
    on the fold boundary) and are accounted as fresh snapshots.
    """

    base: int
    time: float
    state: Dict[str, Any]
    synthetic: bool


class EventJournal:
    """Append-only journal of entity events plus snapshot management."""

    def __init__(
        self,
        snapshot_every: int = 32,
        wal: Optional[WriteAheadLog] = None,
        fault_injector: Optional[Any] = None,
    ) -> None:
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.snapshot_every = snapshot_every
        self._logs: Dict[str, _EntityLog] = {}
        self.stats = JournalStats()
        #: Monotonic per-journal (= per-shard) write counter.  Bumped by
        #: every append — including eviction SERVICE_REMOVED events and
        #: recovery replay — so read-path caches can validate entries
        #: against "has this shard changed at all?".
        self.version = 0
        self.wal = wal
        #: Columnar cold tier holding history folded out of RAM (attached by
        #: the compactor, or by ``recover`` when a manifest exists).
        self.cold_store: Optional[Any] = None
        #: Interned ``{"key": ...}`` heartbeat payloads: re-observations that
        #: change nothing share one payload dict per service key instead of
        #: allocating a fresh dict per event.
        self._hb_payloads: Dict[str, Dict[str, Any]] = {}
        #: Consulted at commit time for simulated crash points (chaos tests).
        self.fault_injector = fault_injector
        #: Called with each durably committed batch's raw WAL event dicts
        #: (the replication shipping hook; see pipeline/replication.py).
        #: Fires only after the batch is fsynced — never for torn or
        #: "before"-mode crashed batches — so whatever the listener ships
        #: is exactly the durable prefix.
        self.commit_listener: Optional[Any] = None
        self._txn_depth = 0
        #: Version bumps deferred inside an open transaction (batched ingest
        #: amortizes the per-event bump into one adjustment at commit).
        self._deferred_version = 0
        self._pending_events: List[Event] = []
        self._pending_snapshots: List[Tuple[str, int, float, Dict[str, Any]]] = []
        #: Events durably committed to the WAL (1-based crash-point index).
        self._durable_events = 0
        self._replaying = False
        #: Close-once guard: ``close`` is idempotent and safe to call while
        #: a parallel executor still holds a reference to this shard.
        self._closed = False
        self._close_lock = threading.Lock()

    @property
    def durable(self) -> bool:
        return self.wal is not None

    def __getstate__(self) -> Dict[str, Any]:
        """Pickle support: parallel recovery ships recovered shards back
        from worker processes (with ``reopen=False``, so no live WAL)."""
        if self.wal is not None:
            raise TypeError("cannot pickle an EventJournal with an open WAL")
        state = dict(self.__dict__)
        del state["_close_lock"]
        state["commit_listener"] = None  # process-local, like the lock
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._close_lock = threading.Lock()

    # -- write path -------------------------------------------------------

    def append(self, entity_id: str, time: float, kind: str, payload: Dict[str, Any]) -> Event:
        """Journal one event; snapshots and tiering happen automatically.

        With a WAL attached the event is staged and becomes durable at the
        enclosing :meth:`transaction` commit (or immediately when no
        transaction is open).
        """
        log = self._logs.setdefault(entity_id, _EntityLog())
        if kind == "service_refreshed" and isinstance(payload, dict) and tuple(payload) == ("key",):
            payload = self._hb_payloads.setdefault(payload["key"], payload)
        event = Event(entity_id=entity_id, seq=log.next_seq, time=time, kind=kind, payload=payload)
        if log.events:
            head_time = log.events[-1].time
        elif log.snapshots:
            head_time = log.snapshots[-1][1]
        else:
            head_time = None
        if head_time is not None and time < head_time:
            raise ValueError(
                f"event time {time} precedes journal head {head_time} for {entity_id}"
            )
        self._apply_append(log, event)
        if self.wal is not None and not self._replaying:
            self._pending_events.append(event)
            if self._txn_depth == 0:
                self._commit()
        return event

    def _apply_append(self, log: _EntityLog, event: Event) -> None:
        """In-memory bookkeeping shared by live appends and WAL replay."""
        log.events.append(event)
        log.next_seq += 1
        if self._txn_depth > 0 and self.wal is not None and not self._replaying:
            # One version adjustment per committed run, not per event.  The
            # final value is identical (commit always follows); only the
            # number of integer bumps changes.
            self._deferred_version += 1
        else:
            self.version += 1
        if log.current is None:
            log.current = new_entity_state(event.entity_id)
        apply_event(log.current, event)
        size = event.encoded_size()
        self.stats.events += 1
        self.stats.event_bytes += size
        self.stats.ssd_bytes += size
        self.stats.resident_events += 1
        self.stats.resident_event_bytes += size
        if log.next_seq % self.snapshot_every == 0:
            self._snapshot(event.entity_id, log, event.time)

    def _snapshot(self, entity_id: str, log: _EntityLog, time: float) -> None:
        state = log.current if log.current is not None else new_entity_state(entity_id)
        log.snapshots.append((log.next_seq, time, snapshot_state(state)))
        size = len(json.dumps(state, default=str))
        self.stats.snapshots += 1
        self.stats.snapshot_bytes += size
        # Everything covered by the snapshot moves to the HDD tier.
        migrated = [e for e in log.events if log.hdd_watermark < e.seq < log.next_seq]
        moved = sum(e.encoded_size() for e in migrated)
        self.stats.ssd_bytes -= moved
        self.stats.hdd_bytes += moved
        self.stats.ssd_bytes += size  # the fresh snapshot itself stays hot
        log.hdd_watermark = log.next_seq - 1
        if self.wal is not None and not self._replaying:
            self._pending_snapshots.append((entity_id, log.next_seq, time, snapshot_state(state)))

    # -- durability --------------------------------------------------------

    @contextmanager
    def transaction(self):
        """Group appends into one atomic WAL batch (one observation's events).

        No-op for in-memory journals.  Nested transactions commit once, at
        the outermost exit.
        """
        self._txn_depth += 1
        try:
            yield self
        finally:
            self._txn_depth -= 1
            if self._txn_depth == 0 and self.wal is not None:
                self._commit()

    def _commit(self) -> None:
        """Flush staged events as one durable batch; fires simulated crashes."""
        self.version += self._deferred_version
        self._deferred_version = 0
        if not self._pending_events:
            self._pending_snapshots.clear()
            return
        events = [
            {"e": e.entity_id, "s": e.seq, "tm": e.time, "k": e.kind, "p": dict(e.payload)}
            for e in self._pending_events
        ]
        lo = self._durable_events + 1
        hi = self._durable_events + len(events)
        crash = None
        if self.fault_injector is not None:
            crash = self.fault_injector.crash_for_range(lo, hi)
        if crash is not None and crash.mode == "before":
            self._pending_events.clear()
            self._pending_snapshots.clear()
            self.fault_injector.raise_crash(crash)
        if crash is not None and crash.mode == "torn":
            self.wal.append_batch(events, torn=True)
            self._pending_events.clear()
            self._pending_snapshots.clear()
            self.fault_injector.raise_crash(crash)

        def _on_durable() -> None:
            # Fires right after the covering fsync (synchronously for the
            # default one-event window).  The listener is read at fire time:
            # a primary detached before its window flushed must not ship.
            listener = self.commit_listener
            if listener is not None:
                listener(events)

        snapshots, self._pending_snapshots = self._pending_snapshots, []
        try:
            self.wal.append_batch(events, on_durable=_on_durable)
        finally:
            # Unstage even when a simulated crash fires inside the append
            # (e.g. a mid-group-commit fsync hook): the record already hit
            # the segment file, so a teardown close() re-committing the
            # staged batch would write a duplicate.  Staged snapshots are
            # dropped with it — recovery regenerates them from replay.
            self._pending_events.clear()
        self._durable_events = hi
        self.stats.wal_batches += 1
        self.stats.wal_events += len(events)
        for entity_id, seq_after, time, state in snapshots:
            self.wal.append_snapshot(entity_id, seq_after, time, state)
        if crash is not None:  # mode == "after": the batch IS durable
            self.wal.flush_commit_window()
            self.fault_injector.raise_crash(crash)

    def flush_commit_window(self) -> None:
        """Make every WAL-appended batch durable now (no-op when clean).

        The platform calls this after each ingestion phase — before
        replication ships or subscriptions deliver — so "acked" always
        implies "fsynced" regardless of the group-commit window size.
        """
        if self.wal is not None:
            self.wal.flush_commit_window()

    def close(self) -> None:
        """Flush and close the WAL (in-memory journals: no-op).

        Idempotent: the first call flushes and closes, every later call is
        a no-op — so shard owners and executors holding the same reference
        can both shut down without double-flushing a closed WAL.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            if self.wal is not None:
                if self._pending_events:
                    self._commit()
                self.wal.close()

    @classmethod
    def recover(
        cls,
        directory: str,
        snapshot_every: int = 32,
        *,
        segment_max_records: int = 128,
        fsync_every: int = 1,
        group_commit_events: Optional[int] = None,
        group_commit_bytes: Optional[int] = None,
        fault_injector: Optional[Any] = None,
        verify_snapshots: bool = True,
        reopen: bool = True,
    ) -> "EventJournal":
        """Rebuild a journal from its WAL directory after a crash.

        Replays every committed batch in order through the exact same
        bookkeeping as live appends, so reconstructed state — events,
        regenerated snapshots, materialized current rows, and storage
        accounting — is byte-identical to the pre-crash journal's durable
        prefix.  A torn final record is detected, counted in
        ``stats.torn_records_discarded``, and truncated away; corruption
        anywhere else raises :class:`~repro.pipeline.wal.WalCorruptionError`.

        With ``reopen`` (default) the WAL is reopened for appending so the
        pipeline can resume where the durable prefix ends.

        When a compaction manifest exists in the directory, recovery is
        *snapshot-anchored*: each entity starts from its verified anchor
        snapshot, segments covered by the manifest are skipped entirely,
        and only the live tail is replayed — O(anchors + tail) instead of
        O(history).  The folded history stays reachable through the
        attached cold store.
        """
        from repro.pipeline.compaction import ColdStore

        store = ColdStore.open(directory)
        start_after = store.through_segment if store is not None else -1
        scan = WriteAheadLog.scan(directory, truncate_torn=True, start_after=start_after)
        journal = cls(snapshot_every=snapshot_every)
        base_batches = 0
        base_events = 0
        if store is not None:
            journal.cold_store = store
            journal._seed_from_manifest(store)
            base_batches = journal.stats.wal_batches
            base_events = journal.stats.wal_events
        journal._replaying = True
        try:
            for batch in scan.batches:
                for raw in batch["events"]:
                    event = Event(
                        entity_id=raw["e"],
                        seq=raw["s"],
                        time=raw["tm"],
                        kind=raw["k"],
                        payload=raw["p"],
                    )
                    log = journal._logs.setdefault(event.entity_id, _EntityLog())
                    if event.seq != log.next_seq:
                        raise WalCorruptionError(
                            f"{directory}: sequence gap for {event.entity_id}: "
                            f"expected {log.next_seq}, found {event.seq}"
                        )
                    journal._apply_append(log, event)
                    journal.stats.recovered_events += 1
        finally:
            journal._replaying = False
        if verify_snapshots:
            journal._verify_sidecar_snapshots(directory, scan.snapshots)
        journal.stats.torn_records_discarded = scan.torn_discarded
        journal._durable_events = base_events + journal.stats.recovered_events
        journal.stats.wal_events = base_events + journal.stats.recovered_events
        journal.stats.wal_batches = base_batches + len(scan.batches)
        journal.fault_injector = fault_injector
        if reopen:
            journal.wal = WriteAheadLog(
                directory,
                segment_max_records=segment_max_records,
                fsync_every=fsync_every,
                group_commit_events=group_commit_events,
                group_commit_bytes=group_commit_bytes,
                start_after=start_after,
            )
        return journal

    def _seed_from_manifest(self, store: Any) -> None:
        """Seed per-entity anchors and storage accounting from a manifest.

        After seeding, replaying the live tail through ``_apply_append``
        lands on exactly the stats and per-entity state the pre-crash
        journal held — the manifest records the folded prefix's
        contribution so seeded + tail == full history.
        """
        for entity_id, anchor in store.anchors().items():
            base, time, state = anchor
            self._logs[entity_id] = _EntityLog(
                events=[],
                snapshots=[(base, time, snapshot_state(state))],
                next_seq=base,
                hdd_watermark=base - 1,
                current=snapshot_state(state),
                base_seq=base,
            )
        stats = store.manifest["stats"]
        self.stats.events = stats["events"]
        self.stats.event_bytes = stats["event_bytes"]
        self.stats.snapshots = stats["snapshots"]
        self.stats.snapshot_bytes = stats["snapshot_bytes"]
        self.stats.ssd_bytes = stats["ssd_bytes"]
        self.stats.hdd_bytes = stats["hdd_bytes"]
        self.stats.cold_bytes = stats["cold_bytes"]
        self.stats.wal_batches = stats["wal_batches"]
        self.stats.wal_events = stats["wal_events"]
        # Every folded event was once an append; the version counter must
        # end equal to the live journal's after the tail replays.
        self.version = stats["events"]

    def _verify_sidecar_snapshots(self, directory: str, snapshots: List[Dict[str, Any]]) -> None:
        """Cross-check sidecar snapshots against the regenerated ones."""
        regenerated: Dict[Tuple[str, int], Dict[str, Any]] = {}
        for entity_id, log in self._logs.items():
            for seq_after, _time, state in log.snapshots:
                regenerated[(entity_id, seq_after)] = state
        for snap in snapshots:
            key = (snap["entity"], snap["seq_after"])
            log = self._logs.get(snap["entity"])
            if log is not None and snap["seq_after"] < log.base_seq:
                # Superseded by the compaction anchor: the snapshot's rows
                # were folded into the cold tier and its state is covered by
                # the (already verified) anchor — nothing left to cross-check.
                continue
            expected = regenerated.get(key)
            if expected is None:
                # Sidecar outlived its batch (crash between batch fsync and
                # sidecar write cannot happen — sidecars are written after —
                # but a torn-batch crash can leave a sidecar-less batch, never
                # the reverse).  An unmatched sidecar means corruption.
                raise WalCorruptionError(
                    f"{directory}: sidecar snapshot for {key} has no matching journal state"
                )
            if expected != snap["state"]:
                raise WalCorruptionError(
                    f"{directory}: sidecar snapshot for {key} diverges from replayed state"
                )

    @classmethod
    def from_events(cls, events: List[Event], snapshot_every: int = 32) -> "EventJournal":
        """Build an in-memory journal by replaying ``events`` in order.

        The reference for recovery tests: ``recover(dir)`` must equal
        ``from_events(durable_prefix)``.
        """
        journal = cls(snapshot_every=snapshot_every)
        for event in events:
            log = journal._logs.setdefault(event.entity_id, _EntityLog())
            if event.seq != log.next_seq:
                raise ValueError(f"sequence gap for {event.entity_id} at seq {event.seq}")
            journal._apply_append(log, event)
        return journal

    # -- compaction support ------------------------------------------------

    def anchor_state(self, entity_id: str, base: int) -> Dict[str, Any]:
        """State reflecting exactly the events with seq < ``base``.

        Used by the compactor to materialize synthetic anchors: start from
        the newest resident snapshot at or below ``base`` and replay the
        resident events up to it.  Deterministic, so the live value equals
        what recovery reads back from the manifest (modulo JSON flavor).
        """
        log = self._logs[entity_id]
        usable = [s for s in log.snapshots if s[0] <= base]
        if usable:
            start, _, snapped = usable[-1]
            state = snapshot_state(snapped)
        else:
            start = log.base_seq
            state = new_entity_state(entity_id)
        for event in log.events[start - log.base_seq : base - log.base_seq]:
            apply_event(state, event)
        return state

    def truncate_compacted(self, anchors: Dict[str, CompactionAnchor]) -> None:
        """Fold each entity's prefix below its anchor out of RAM.

        Storage accounting moves the folded events (whatever tier they were
        on) and every superseded snapshot to the cold tier; a synthetic
        anchor is accounted as a fresh hot snapshot.  ``version`` and
        per-entity versions are deliberately untouched — compaction changes
        where history lives, never what reads return — so read-path caches
        stay valid.
        """
        for entity_id, anchor in anchors.items():
            log = self._logs[entity_id]
            cut = anchor.base - log.base_seq
            if cut < 0 or cut > len(log.events):
                raise ValueError(
                    f"anchor {anchor.base} outside resident range for {entity_id}"
                )
            folded = log.events[:cut]
            folded_bytes = 0
            for event in folded:
                size = event.encoded_size()
                folded_bytes += size
                if event.seq <= log.hdd_watermark:
                    self.stats.hdd_bytes -= size
                else:
                    self.stats.ssd_bytes -= size
            self.stats.cold_bytes += folded_bytes
            self.stats.resident_events -= len(folded)
            self.stats.resident_event_bytes -= folded_bytes
            kept = [s for s in log.snapshots if s[0] > anchor.base]
            cadence_anchor = next(
                (s for s in log.snapshots if s[0] == anchor.base), None
            )
            for seq_after, _time, state in log.snapshots:
                if seq_after >= anchor.base:
                    continue
                size = len(json.dumps(state, default=str))
                self.stats.ssd_bytes -= size
                self.stats.cold_bytes += size
            if cadence_anchor is not None:
                head = [cadence_anchor]
            else:
                head = [(anchor.base, anchor.time, snapshot_state(anchor.state))]
                size = len(json.dumps(anchor.state, default=str))
                self.stats.snapshots += 1
                self.stats.snapshot_bytes += size
                self.stats.ssd_bytes += size
            log.snapshots = head + kept
            log.events = log.events[cut:]
            log.base_seq = anchor.base
            log.hdd_watermark = max(log.hdd_watermark, anchor.base - 1)
            if log.current is None:
                log.current = snapshot_state(head[0][2])

    def storage_report(self) -> Dict[str, Any]:
        """Per-journal storage block for ``traffic_report()["storage"]``."""
        wal = self.wal
        return {
            "segments": wal.stats.segments if wal is not None else 0,
            "wal_records": wal.stats.records if wal is not None else 0,
            "wal_bytes_written": wal.stats.bytes_written if wal is not None else 0,
            "heartbeats_encoded": wal.stats.heartbeats_encoded if wal is not None else 0,
            "live_bytes": self.stats.ssd_bytes,
            "superseded_bytes": self.stats.hdd_bytes,
            "cold_bytes": self.stats.cold_bytes,
            "total_bytes": self.stats.total_bytes,
            "resident_events": self.stats.resident_events,
            "resident_event_bytes": self.stats.resident_event_bytes,
        }

    # -- read path ---------------------------------------------------------

    def reconstruct(self, entity_id: str, at: Optional[float] = None) -> Dict[str, Any]:
        """Entity state at time ``at`` (None: current state).

        Finds the newest snapshot not after ``at`` and replays subsequent
        events with time <= ``at``.  A query older than every resident
        snapshot time-travels into the cold tier: the folded prefix is
        replayed from zero (compaction anchors guarantee the cold run holds
        every event older than the oldest resident snapshot).
        """
        log = self._logs.get(entity_id)
        if log is None:
            return new_entity_state(entity_id)
        if at is None:
            # Fast path: the materialized serving row.
            return snapshot_state(log.current) if log.current is not None else new_entity_state(entity_id)
        usable = [s for s in log.snapshots if s[1] <= at]
        if usable:
            snap_seq, _, snapped = usable[-1]
            state = snapshot_state(snapped)
            for event in log.events[snap_seq - log.base_seq :]:
                if event.time > at:
                    break
                apply_event(state, event)
                self.stats.replayed_events += 1
            return state
        state = new_entity_state(entity_id)
        if log.base_seq > 0:
            # ``at`` precedes the anchor snapshot: every event with
            # time <= at is in the cold tier.
            for event in self._cold_events(entity_id):
                if event.time > at:
                    break
                apply_event(state, event)
                self.stats.replayed_events += 1
            return state
        for event in log.events:
            if event.time > at:
                break
            apply_event(state, event)
            self.stats.replayed_events += 1
        return state

    def peek_current(self, entity_id: str) -> Dict[str, Any]:
        """The live materialized state, WITHOUT copying.

        Write-side hot path only; callers must treat the result as
        read-only and mutate exclusively through :meth:`append`.
        """
        log = self._logs.get(entity_id)
        if log is None or log.current is None:
            return new_entity_state(entity_id)
        return log.current

    def events_for(self, entity_id: str, since_seq: int = 0) -> List[Event]:
        """Events with seq >= ``since_seq``, stitching cold history back in
        when the request reaches below the compaction fold boundary."""
        log = self._logs.get(entity_id)
        if log is None:
            return []
        if since_seq >= log.base_seq:
            return log.events[since_seq - log.base_seq :]
        cold = self._cold_events(entity_id)
        return cold[since_seq:] + log.events

    def _cold_events(self, entity_id: str) -> List[Event]:
        """The folded event prefix (seqs [0, base_seq)) from the cold tier."""
        if self.cold_store is None:
            return []
        return self.cold_store.events_for(entity_id)

    def entity_ids(self) -> Iterator[str]:
        return iter(self._logs.keys())

    def has_entity(self, entity_id: str) -> bool:
        return entity_id in self._logs

    def event_count(self, entity_id: str) -> int:
        log = self._logs.get(entity_id)
        return log.next_seq if log else 0

    def entity_version(self, entity_id: str) -> int:
        """Monotonic per-entity version: bumps on every append (including
        evictions), never otherwise — the read-path cache validity key.

        Identical to :meth:`event_count` today, but named for its contract:
        two calls returning the same version guarantee the entity's
        reconstructed state is unchanged.
        """
        log = self._logs.get(entity_id)
        return log.next_seq if log else 0

    def __len__(self) -> int:
        return len(self._logs)
