"""The Bigtable-style event journal with snapshots and storage tiering.

Rows are keyed by (entity id, monotonic sequence number).  The journal
stores delta-encoded events plus periodic state snapshots; reconstruction
finds the latest snapshot at or before the queried time and replays the
events after it.  Snapshot-or-older rows migrate from the (simulated) SSD
tier to the HDD tier, mirroring how Censys keeps only the hot tail of each
entity's history on fast storage.

Durability (opt-in): constructing the journal with a
:class:`~repro.pipeline.wal.WriteAheadLog` makes every committed batch of
events durable before control returns to the caller, and
:meth:`EventJournal.recover` rebuilds byte-identical state from the WAL
directory after a crash — snapshots are *regenerated* during replay (the
snapshot cadence is deterministic in the event sequence) and cross-checked
against the sidecar copies written before the crash.  The default
(``wal=None``) keeps the original purely in-memory behaviour.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.pipeline.events import Event
from repro.pipeline.state import apply_event, new_entity_state, snapshot_state
from repro.pipeline.wal import WalCorruptionError, WriteAheadLog

__all__ = ["JournalStats", "EventJournal"]


@dataclass(slots=True)
class JournalStats:
    """Storage accounting (bytes are modeled, not measured)."""

    events: int = 0
    snapshots: int = 0
    event_bytes: int = 0
    snapshot_bytes: int = 0
    ssd_bytes: int = 0
    hdd_bytes: int = 0
    replayed_events: int = 0
    #: Durability accounting (all zero for in-memory journals).
    wal_batches: int = 0
    wal_events: int = 0
    recovered_events: int = 0
    torn_records_discarded: int = 0

    @property
    def total_bytes(self) -> int:
        return self.event_bytes + self.snapshot_bytes


@dataclass(slots=True)
class _EntityLog:
    """Per-entity journal rows."""

    events: List[Event] = field(default_factory=list)
    #: (seq_after, time, state) triples; a snapshot at index i reflects all
    #: events with seq < seq_after.
    snapshots: List[Tuple[int, float, Dict[str, Any]]] = field(default_factory=list)
    next_seq: int = 0
    #: Sequence numbers at or below this are on the HDD tier.
    hdd_watermark: int = -1
    #: Materialized current state (the hot serving row).
    current: Optional[Dict[str, Any]] = None


class EventJournal:
    """Append-only journal of entity events plus snapshot management."""

    def __init__(
        self,
        snapshot_every: int = 32,
        wal: Optional[WriteAheadLog] = None,
        fault_injector: Optional[Any] = None,
    ) -> None:
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.snapshot_every = snapshot_every
        self._logs: Dict[str, _EntityLog] = {}
        self.stats = JournalStats()
        #: Monotonic per-journal (= per-shard) write counter.  Bumped by
        #: every append — including eviction SERVICE_REMOVED events and
        #: recovery replay — so read-path caches can validate entries
        #: against "has this shard changed at all?".
        self.version = 0
        self.wal = wal
        #: Consulted at commit time for simulated crash points (chaos tests).
        self.fault_injector = fault_injector
        #: Called with each durably committed batch's raw WAL event dicts
        #: (the replication shipping hook; see pipeline/replication.py).
        #: Fires only after the batch is fsynced — never for torn or
        #: "before"-mode crashed batches — so whatever the listener ships
        #: is exactly the durable prefix.
        self.commit_listener: Optional[Any] = None
        self._txn_depth = 0
        self._pending_events: List[Event] = []
        self._pending_snapshots: List[Tuple[str, int, float, Dict[str, Any]]] = []
        #: Events durably committed to the WAL (1-based crash-point index).
        self._durable_events = 0
        self._replaying = False
        #: Close-once guard: ``close`` is idempotent and safe to call while
        #: a parallel executor still holds a reference to this shard.
        self._closed = False
        self._close_lock = threading.Lock()

    @property
    def durable(self) -> bool:
        return self.wal is not None

    def __getstate__(self) -> Dict[str, Any]:
        """Pickle support: parallel recovery ships recovered shards back
        from worker processes (with ``reopen=False``, so no live WAL)."""
        if self.wal is not None:
            raise TypeError("cannot pickle an EventJournal with an open WAL")
        state = dict(self.__dict__)
        del state["_close_lock"]
        state["commit_listener"] = None  # process-local, like the lock
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._close_lock = threading.Lock()

    # -- write path -------------------------------------------------------

    def append(self, entity_id: str, time: float, kind: str, payload: Dict[str, Any]) -> Event:
        """Journal one event; snapshots and tiering happen automatically.

        With a WAL attached the event is staged and becomes durable at the
        enclosing :meth:`transaction` commit (or immediately when no
        transaction is open).
        """
        log = self._logs.setdefault(entity_id, _EntityLog())
        event = Event(entity_id=entity_id, seq=log.next_seq, time=time, kind=kind, payload=payload)
        if log.events and time < log.events[-1].time:
            raise ValueError(
                f"event time {time} precedes journal head {log.events[-1].time} for {entity_id}"
            )
        self._apply_append(log, event)
        if self.wal is not None and not self._replaying:
            self._pending_events.append(event)
            if self._txn_depth == 0:
                self._commit()
        return event

    def _apply_append(self, log: _EntityLog, event: Event) -> None:
        """In-memory bookkeeping shared by live appends and WAL replay."""
        log.events.append(event)
        log.next_seq += 1
        self.version += 1
        if log.current is None:
            log.current = new_entity_state(event.entity_id)
        apply_event(log.current, event)
        size = event.encoded_size()
        self.stats.events += 1
        self.stats.event_bytes += size
        self.stats.ssd_bytes += size
        if log.next_seq % self.snapshot_every == 0:
            self._snapshot(event.entity_id, log, event.time)

    def _snapshot(self, entity_id: str, log: _EntityLog, time: float) -> None:
        state = log.current if log.current is not None else new_entity_state(entity_id)
        log.snapshots.append((log.next_seq, time, snapshot_state(state)))
        size = len(json.dumps(state, default=str))
        self.stats.snapshots += 1
        self.stats.snapshot_bytes += size
        # Everything covered by the snapshot moves to the HDD tier.
        migrated = [e for e in log.events if log.hdd_watermark < e.seq < log.next_seq]
        moved = sum(e.encoded_size() for e in migrated)
        self.stats.ssd_bytes -= moved
        self.stats.hdd_bytes += moved
        self.stats.ssd_bytes += size  # the fresh snapshot itself stays hot
        log.hdd_watermark = log.next_seq - 1
        if self.wal is not None and not self._replaying:
            self._pending_snapshots.append((entity_id, log.next_seq, time, snapshot_state(state)))

    # -- durability --------------------------------------------------------

    @contextmanager
    def transaction(self):
        """Group appends into one atomic WAL batch (one observation's events).

        No-op for in-memory journals.  Nested transactions commit once, at
        the outermost exit.
        """
        self._txn_depth += 1
        try:
            yield self
        finally:
            self._txn_depth -= 1
            if self._txn_depth == 0 and self.wal is not None:
                self._commit()

    def _commit(self) -> None:
        """Flush staged events as one durable batch; fires simulated crashes."""
        if not self._pending_events:
            self._pending_snapshots.clear()
            return
        events = [
            {"e": e.entity_id, "s": e.seq, "tm": e.time, "k": e.kind, "p": dict(e.payload)}
            for e in self._pending_events
        ]
        lo = self._durable_events + 1
        hi = self._durable_events + len(events)
        crash = None
        if self.fault_injector is not None:
            crash = self.fault_injector.crash_for_range(lo, hi)
        if crash is not None and crash.mode == "before":
            self._pending_events.clear()
            self._pending_snapshots.clear()
            self.fault_injector.raise_crash(crash)
        if crash is not None and crash.mode == "torn":
            self.wal.append_batch(events, torn=True)
            self._pending_events.clear()
            self._pending_snapshots.clear()
            self.fault_injector.raise_crash(crash)
        self.wal.append_batch(events)
        self._durable_events = hi
        self.stats.wal_batches += 1
        self.stats.wal_events += len(events)
        self._pending_events.clear()
        if self.commit_listener is not None:
            # The batch is fsynced: ship-eligible even if the "after"-mode
            # crash below fires (replication reads the durable WAL).
            self.commit_listener(events)
        for entity_id, seq_after, time, state in self._pending_snapshots:
            self.wal.append_snapshot(entity_id, seq_after, time, state)
        self._pending_snapshots.clear()
        if crash is not None:  # mode == "after": the batch IS durable
            self.fault_injector.raise_crash(crash)

    def close(self) -> None:
        """Flush and close the WAL (in-memory journals: no-op).

        Idempotent: the first call flushes and closes, every later call is
        a no-op — so shard owners and executors holding the same reference
        can both shut down without double-flushing a closed WAL.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            if self.wal is not None:
                if self._pending_events:
                    self._commit()
                self.wal.close()

    @classmethod
    def recover(
        cls,
        directory: str,
        snapshot_every: int = 32,
        *,
        segment_max_records: int = 128,
        fsync_every: int = 1,
        fault_injector: Optional[Any] = None,
        verify_snapshots: bool = True,
        reopen: bool = True,
    ) -> "EventJournal":
        """Rebuild a journal from its WAL directory after a crash.

        Replays every committed batch in order through the exact same
        bookkeeping as live appends, so reconstructed state — events,
        regenerated snapshots, materialized current rows, and storage
        accounting — is byte-identical to the pre-crash journal's durable
        prefix.  A torn final record is detected, counted in
        ``stats.torn_records_discarded``, and truncated away; corruption
        anywhere else raises :class:`~repro.pipeline.wal.WalCorruptionError`.

        With ``reopen`` (default) the WAL is reopened for appending so the
        pipeline can resume where the durable prefix ends.
        """
        scan = WriteAheadLog.scan(directory, truncate_torn=True)
        journal = cls(snapshot_every=snapshot_every)
        journal._replaying = True
        try:
            for batch in scan.batches:
                for raw in batch["events"]:
                    event = Event(
                        entity_id=raw["e"],
                        seq=raw["s"],
                        time=raw["tm"],
                        kind=raw["k"],
                        payload=raw["p"],
                    )
                    log = journal._logs.setdefault(event.entity_id, _EntityLog())
                    if event.seq != log.next_seq:
                        raise WalCorruptionError(
                            f"{directory}: sequence gap for {event.entity_id}: "
                            f"expected {log.next_seq}, found {event.seq}"
                        )
                    journal._apply_append(log, event)
                    journal.stats.recovered_events += 1
        finally:
            journal._replaying = False
        if verify_snapshots:
            journal._verify_sidecar_snapshots(directory, scan.snapshots)
        journal.stats.torn_records_discarded = scan.torn_discarded
        journal._durable_events = journal.stats.recovered_events
        journal.stats.wal_events = journal.stats.recovered_events
        journal.stats.wal_batches = len(scan.batches)
        journal.fault_injector = fault_injector
        if reopen:
            journal.wal = WriteAheadLog(
                directory,
                segment_max_records=segment_max_records,
                fsync_every=fsync_every,
            )
        return journal

    def _verify_sidecar_snapshots(self, directory: str, snapshots: List[Dict[str, Any]]) -> None:
        """Cross-check sidecar snapshots against the regenerated ones."""
        regenerated: Dict[Tuple[str, int], Dict[str, Any]] = {}
        for entity_id, log in self._logs.items():
            for seq_after, _time, state in log.snapshots:
                regenerated[(entity_id, seq_after)] = state
        for snap in snapshots:
            key = (snap["entity"], snap["seq_after"])
            expected = regenerated.get(key)
            if expected is None:
                # Sidecar outlived its batch (crash between batch fsync and
                # sidecar write cannot happen — sidecars are written after —
                # but a torn-batch crash can leave a sidecar-less batch, never
                # the reverse).  An unmatched sidecar means corruption.
                raise WalCorruptionError(
                    f"{directory}: sidecar snapshot for {key} has no matching journal state"
                )
            if expected != snap["state"]:
                raise WalCorruptionError(
                    f"{directory}: sidecar snapshot for {key} diverges from replayed state"
                )

    @classmethod
    def from_events(cls, events: List[Event], snapshot_every: int = 32) -> "EventJournal":
        """Build an in-memory journal by replaying ``events`` in order.

        The reference for recovery tests: ``recover(dir)`` must equal
        ``from_events(durable_prefix)``.
        """
        journal = cls(snapshot_every=snapshot_every)
        for event in events:
            log = journal._logs.setdefault(event.entity_id, _EntityLog())
            if event.seq != log.next_seq:
                raise ValueError(f"sequence gap for {event.entity_id} at seq {event.seq}")
            journal._apply_append(log, event)
        return journal

    # -- read path ---------------------------------------------------------

    def reconstruct(self, entity_id: str, at: Optional[float] = None) -> Dict[str, Any]:
        """Entity state at time ``at`` (None: current state).

        Finds the newest snapshot not after ``at`` and replays subsequent
        events with time <= ``at``.
        """
        log = self._logs.get(entity_id)
        if log is None:
            return new_entity_state(entity_id)
        if at is None:
            # Fast path: the materialized serving row.
            return snapshot_state(log.current) if log.current is not None else new_entity_state(entity_id)
        base_seq = 0
        state = new_entity_state(entity_id)
        usable = [
            s for s in log.snapshots if at is None or s[1] <= at
        ]
        if usable:
            base_seq, _, snapped = usable[-1]
            state = snapshot_state(snapped)
        for event in log.events[base_seq:]:
            if at is not None and event.time > at:
                break
            apply_event(state, event)
            self.stats.replayed_events += 1
        return state

    def peek_current(self, entity_id: str) -> Dict[str, Any]:
        """The live materialized state, WITHOUT copying.

        Write-side hot path only; callers must treat the result as
        read-only and mutate exclusively through :meth:`append`.
        """
        log = self._logs.get(entity_id)
        if log is None or log.current is None:
            return new_entity_state(entity_id)
        return log.current

    def events_for(self, entity_id: str, since_seq: int = 0) -> List[Event]:
        log = self._logs.get(entity_id)
        if log is None:
            return []
        return log.events[since_seq:]

    def entity_ids(self) -> Iterator[str]:
        return iter(self._logs.keys())

    def has_entity(self, entity_id: str) -> bool:
        return entity_id in self._logs

    def event_count(self, entity_id: str) -> int:
        log = self._logs.get(entity_id)
        return log.next_seq if log else 0

    def entity_version(self, entity_id: str) -> int:
        """Monotonic per-entity version: bumps on every append (including
        evictions), never otherwise — the read-path cache validity key.

        Identical to :meth:`event_count` today, but named for its contract:
        two calls returning the same version guarantee the entity's
        reconstructed state is unchanged.
        """
        log = self._logs.get(entity_id)
        return log.next_seq if log else 0

    def __len__(self) -> int:
        return len(self._logs)
