"""The Bigtable-style event journal with snapshots and storage tiering.

Rows are keyed by (entity id, monotonic sequence number).  The journal
stores delta-encoded events plus periodic state snapshots; reconstruction
finds the latest snapshot at or before the queried time and replays the
events after it.  Snapshot-or-older rows migrate from the (simulated) SSD
tier to the HDD tier, mirroring how Censys keeps only the hot tail of each
entity's history on fast storage.
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.pipeline.events import Event
from repro.pipeline.state import apply_event, new_entity_state, snapshot_state

__all__ = ["JournalStats", "EventJournal"]


@dataclass(slots=True)
class JournalStats:
    """Storage accounting (bytes are modeled, not measured)."""

    events: int = 0
    snapshots: int = 0
    event_bytes: int = 0
    snapshot_bytes: int = 0
    ssd_bytes: int = 0
    hdd_bytes: int = 0
    replayed_events: int = 0

    @property
    def total_bytes(self) -> int:
        return self.event_bytes + self.snapshot_bytes


@dataclass(slots=True)
class _EntityLog:
    """Per-entity journal rows."""

    events: List[Event] = field(default_factory=list)
    #: (seq_after, time, state) triples; a snapshot at index i reflects all
    #: events with seq < seq_after.
    snapshots: List[Tuple[int, float, Dict[str, Any]]] = field(default_factory=list)
    next_seq: int = 0
    #: Sequence numbers at or below this are on the HDD tier.
    hdd_watermark: int = -1
    #: Materialized current state (the hot serving row).
    current: Optional[Dict[str, Any]] = None


class EventJournal:
    """Append-only journal of entity events plus snapshot management."""

    def __init__(self, snapshot_every: int = 32) -> None:
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.snapshot_every = snapshot_every
        self._logs: Dict[str, _EntityLog] = {}
        self.stats = JournalStats()

    # -- write path -------------------------------------------------------

    def append(self, entity_id: str, time: float, kind: str, payload: Dict[str, Any]) -> Event:
        """Journal one event; snapshots and tiering happen automatically."""
        log = self._logs.setdefault(entity_id, _EntityLog())
        event = Event(entity_id=entity_id, seq=log.next_seq, time=time, kind=kind, payload=payload)
        if log.events and time < log.events[-1].time:
            raise ValueError(
                f"event time {time} precedes journal head {log.events[-1].time} for {entity_id}"
            )
        log.events.append(event)
        log.next_seq += 1
        if log.current is None:
            log.current = new_entity_state(entity_id)
        apply_event(log.current, event)
        size = event.encoded_size()
        self.stats.events += 1
        self.stats.event_bytes += size
        self.stats.ssd_bytes += size
        if log.next_seq % self.snapshot_every == 0:
            self._snapshot(entity_id, log, time)
        return event

    def _snapshot(self, entity_id: str, log: _EntityLog, time: float) -> None:
        state = log.current if log.current is not None else new_entity_state(entity_id)
        log.snapshots.append((log.next_seq, time, snapshot_state(state)))
        size = len(json.dumps(state, default=str))
        self.stats.snapshots += 1
        self.stats.snapshot_bytes += size
        # Everything covered by the snapshot moves to the HDD tier.
        migrated = [e for e in log.events if log.hdd_watermark < e.seq < log.next_seq]
        moved = sum(e.encoded_size() for e in migrated)
        self.stats.ssd_bytes -= moved
        self.stats.hdd_bytes += moved
        self.stats.ssd_bytes += size  # the fresh snapshot itself stays hot
        log.hdd_watermark = log.next_seq - 1

    # -- read path ---------------------------------------------------------

    def reconstruct(self, entity_id: str, at: Optional[float] = None) -> Dict[str, Any]:
        """Entity state at time ``at`` (None: current state).

        Finds the newest snapshot not after ``at`` and replays subsequent
        events with time <= ``at``.
        """
        log = self._logs.get(entity_id)
        if log is None:
            return new_entity_state(entity_id)
        if at is None:
            # Fast path: the materialized serving row.
            return snapshot_state(log.current) if log.current is not None else new_entity_state(entity_id)
        base_seq = 0
        state = new_entity_state(entity_id)
        usable = [
            s for s in log.snapshots if at is None or s[1] <= at
        ]
        if usable:
            base_seq, _, snapped = usable[-1]
            state = snapshot_state(snapped)
        for event in log.events[base_seq:]:
            if at is not None and event.time > at:
                break
            apply_event(state, event)
            self.stats.replayed_events += 1
        return state

    def peek_current(self, entity_id: str) -> Dict[str, Any]:
        """The live materialized state, WITHOUT copying.

        Write-side hot path only; callers must treat the result as
        read-only and mutate exclusively through :meth:`append`.
        """
        log = self._logs.get(entity_id)
        if log is None or log.current is None:
            return new_entity_state(entity_id)
        return log.current

    def events_for(self, entity_id: str, since_seq: int = 0) -> List[Event]:
        log = self._logs.get(entity_id)
        if log is None:
            return []
        return log.events[since_seq:]

    def entity_ids(self) -> Iterator[str]:
        return iter(self._logs.keys())

    def has_entity(self, entity_id: str) -> bool:
        return entity_id in self._logs

    def event_count(self, entity_id: str) -> int:
        log = self._logs.get(entity_id)
        return log.next_seq if log else 0

    def __len__(self) -> int:
        return len(self._logs)
