"""CQRS data pipeline: events, journal, snapshots, write/read sides, queues.

Durability and fault tolerance layer on the same surface: a write-ahead
log backend (``wal``), crash recovery (``EventJournal.recover``), seeded
fault injection (``faults``), retry/dead-letter policies (``reliability``),
and an at-least-once delivery simulation (``delivery``).
"""

from repro.pipeline.cache import CacheStats, ReconstructionCache, VersionedLRU
from repro.pipeline.delivery import AtLeastOnceSource, FaultyChannel, Resequencer
from repro.pipeline.events import Event, EventKind, service_key
from repro.pipeline.executors import (
    ProcessShardExecutor,
    SerialExecutor,
    ShardExecutor,
    ShardTaskError,
    ThreadShardExecutor,
    make_executor,
)
from repro.pipeline.faults import (
    CrashPoint,
    FaultInjector,
    FaultPlan,
    SimulatedCrash,
    TransientScanError,
)
from repro.pipeline.compaction import (
    ColdStore,
    CompactionStats,
    SegmentCompactor,
    ShardedCompactor,
    compact_journal_in_memory,
)
from repro.pipeline.journal import CompactionAnchor, EventJournal, JournalStats
from repro.pipeline.queues import EventBus
from repro.pipeline.replication import (
    BatchLog,
    ReplicaState,
    ReplicatedShard,
    ReplicationBatch,
    ReplicationError,
    ReplicationManager,
    ShardReplicator,
)
from repro.pipeline.sharding import ShardMap, ShardRecoveryError, ShardedJournal
from repro.pipeline.read_side import Enricher, ReadSide
from repro.pipeline.reliability import DeadLetter, DeadLetterQueue, RetryPolicy
from repro.pipeline.state import (
    apply_event,
    canonical_json,
    live_services,
    new_entity_state,
    state_digest,
)
from repro.pipeline.wal import WalCorruptionError, WriteAheadLog
from repro.pipeline.write_side import (
    ScanObservation,
    WriteSideProcessor,
    WriteStats,
    host_entity_id,
)

# Imported last: subscriptions pulls in repro.search (for compiled query
# plans), whose modules import repro.pipeline submodules — keeping this
# import at the tail means the package namespace above is already built
# if that chain re-enters this partially-initialized package.
from repro.pipeline.subscriptions import (  # noqa: E402
    Notification,
    NotificationDeliverer,
    Subscription,
    SubscriptionEngine,
    anchor_tokens,
    subscription_entity_id,
)

__all__ = [
    "Event",
    "EventKind",
    "service_key",
    "EventJournal",
    "JournalStats",
    "CacheStats",
    "ReconstructionCache",
    "VersionedLRU",
    "ShardMap",
    "ShardedJournal",
    "ShardRecoveryError",
    "EventBus",
    "ReadSide",
    "Enricher",
    "apply_event",
    "new_entity_state",
    "live_services",
    "ScanObservation",
    "WriteSideProcessor",
    "WriteStats",
    "host_entity_id",
    # Durability & fault tolerance
    "WriteAheadLog",
    "WalCorruptionError",
    "FaultPlan",
    "FaultInjector",
    "CrashPoint",
    "SimulatedCrash",
    "TransientScanError",
    "RetryPolicy",
    "DeadLetter",
    "DeadLetterQueue",
    "AtLeastOnceSource",
    "FaultyChannel",
    "Resequencer",
    # Parallel shard execution
    "ShardExecutor",
    "SerialExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "ShardTaskError",
    "make_executor",
    # Replication & failover
    "ReplicationBatch",
    "ReplicationError",
    "ReplicaState",
    "ShardReplicator",
    "ReplicatedShard",
    "ReplicationManager",
    "BatchLog",
    # Compaction & tiered storage
    "ColdStore",
    "CompactionAnchor",
    "CompactionStats",
    "SegmentCompactor",
    "ShardedCompactor",
    "compact_journal_in_memory",
    "canonical_json",
    "state_digest",
    # Standing queries
    "Notification",
    "NotificationDeliverer",
    "Subscription",
    "SubscriptionEngine",
    "anchor_tokens",
    "subscription_entity_id",
]
