"""CQRS data pipeline: events, journal, snapshots, write/read sides, queues."""

from repro.pipeline.events import Event, EventKind, service_key
from repro.pipeline.journal import EventJournal, JournalStats
from repro.pipeline.queues import EventBus
from repro.pipeline.read_side import Enricher, ReadSide
from repro.pipeline.state import apply_event, live_services, new_entity_state
from repro.pipeline.write_side import ScanObservation, WriteSideProcessor, host_entity_id

__all__ = [
    "Event",
    "EventKind",
    "service_key",
    "EventJournal",
    "JournalStats",
    "EventBus",
    "ReadSide",
    "Enricher",
    "apply_event",
    "new_entity_state",
    "live_services",
    "ScanObservation",
    "WriteSideProcessor",
    "host_entity_id",
]
