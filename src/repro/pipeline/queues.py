"""In-process topic queues (the Pub/Sub substitute).

The write side publishes follow-up work (reindexing, certificate
processing, predictive-model updates) instead of doing it inline — the
paper's "minimal processing during initial data ingestion".  Delivery is
deferred until :meth:`EventBus.pump`, which the platform calls once per
tick, so ingestion stays cheap and ordering across topics is explicit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Tuple

__all__ = ["EventBus"]

Handler = Callable[[Dict[str, Any]], None]


class EventBus:
    """Topic-based fan-out with deferred delivery."""

    def __init__(self) -> None:
        self._subscribers: Dict[str, List[Handler]] = {}
        self._pending: Deque[Tuple[str, Dict[str, Any]]] = deque()
        self.published = 0
        self.delivered = 0

    def subscribe(self, topic: str, handler: Handler) -> None:
        self._subscribers.setdefault(topic, []).append(handler)

    def publish(self, topic: str, message: Dict[str, Any]) -> None:
        self._pending.append((topic, message))
        self.published += 1

    def pump(self, max_messages: int | None = None) -> int:
        """Deliver queued messages to subscribers; returns count delivered.

        Messages published *during* delivery are processed in the same pump
        unless ``max_messages`` caps the batch.
        """
        delivered = 0
        while self._pending:
            if max_messages is not None and delivered >= max_messages:
                break
            topic, message = self._pending.popleft()
            for handler in self._subscribers.get(topic, ()):  # fan-out
                handler(message)
            delivered += 1
            self.delivered += 1
        return delivered

    @property
    def backlog(self) -> int:
        return len(self._pending)
