"""In-process topic queues (the Pub/Sub substitute).

The write side publishes follow-up work (reindexing, certificate
processing, predictive-model updates) instead of doing it inline — the
paper's "minimal processing during initial data ingestion".  Delivery is
deferred until :meth:`EventBus.pump`, which the platform calls once per
tick, so ingestion stays cheap and ordering across topics is explicit.

Fault tolerance (opt-in): a :class:`~repro.pipeline.faults.FaultInjector`
can drop, duplicate, or delay queued messages deterministically, and a
:class:`~repro.pipeline.reliability.RetryPolicy` turns handler exceptions
into bounded redelivery with a dead-letter queue instead of a lost
message.  Without those, behaviour is byte-identical to the original bus:
strict publish-order delivery, handler exceptions propagate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.pipeline.faults import FaultInjector
from repro.pipeline.reliability import DeadLetterQueue, RetryPolicy

__all__ = ["EventBus"]

Handler = Callable[[Dict[str, Any]], None]


@dataclass(slots=True)
class _Queued:
    """One queued delivery: the message plus its fault/retry bookkeeping."""

    topic: str
    message: Dict[str, Any]
    seq: int
    attempts: int = 0
    times_delayed: int = 0
    is_duplicate: bool = False


class EventBus:
    """Topic-based fan-out with deferred delivery."""

    def __init__(
        self,
        faults: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
        dlq: Optional[DeadLetterQueue] = None,
    ) -> None:
        self._subscribers: Dict[str, List[Handler]] = {}
        self._pending: Deque[_Queued] = deque()
        self._next_seq = 0
        self.faults = faults
        #: None preserves the original contract: handler exceptions propagate
        #: out of pump() and the message is lost.
        self.retry = retry
        self.dlq = dlq if dlq is not None else DeadLetterQueue()
        self.published = 0
        self.delivered = 0
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.retried = 0
        self.dead_lettered = 0

    def subscribe(self, topic: str, handler: Handler) -> None:
        self._subscribers.setdefault(topic, []).append(handler)

    def publish(self, topic: str, message: Dict[str, Any]) -> None:
        self._pending.append(_Queued(topic, message, self._next_seq))
        self._next_seq += 1
        self.published += 1

    def pump(self, max_messages: Optional[int] = None) -> int:
        """Deliver queued messages to subscribers; returns count delivered.

        Messages published *during* delivery are processed in the same pump
        unless ``max_messages`` caps the batch.  ``max_messages=0`` (or any
        non-positive cap) delivers nothing and leaves the backlog intact —
        zero is a cap of zero, not "unlimited".
        """
        if max_messages is not None and max_messages <= 0:
            return 0
        delivered = 0
        while self._pending:
            if max_messages is not None and delivered >= max_messages:
                break
            entry = self._pending.popleft()
            if self.faults is not None and not entry.is_duplicate:
                if self.faults.bus_should_drop(entry.seq):
                    self.dropped += 1
                    self.dlq.push((entry.topic, entry.message), "injected bus drop")
                    continue
                if self.faults.bus_should_delay(entry.seq, entry.times_delayed):
                    entry.times_delayed += 1
                    self.delayed += 1
                    self._pending.append(entry)
                    continue
                if entry.times_delayed == 0 and entry.attempts == 0 and \
                        self.faults.bus_should_duplicate(entry.seq):
                    self.duplicated += 1
                    dup = _Queued(entry.topic, entry.message, entry.seq, is_duplicate=True)
                    self._pending.append(dup)
            try:
                for handler in self._subscribers.get(entry.topic, ()):  # fan-out
                    handler(entry.message)
            except Exception:
                if self.retry is None:
                    raise
                entry.attempts += 1
                self.retried += 1
                if entry.attempts >= self.retry.max_attempts:
                    self.dead_lettered += 1
                    self.dlq.push((entry.topic, entry.message), "handler retries exhausted")
                else:
                    self._pending.append(entry)  # redeliver later in this pump
                continue
            delivered += 1
            self.delivered += 1
        return delivered

    @property
    def backlog(self) -> int:
        return len(self._pending)
