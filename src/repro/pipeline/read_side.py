"""The CQRS read (query) side: point-in-time reconstruction plus enrichment.

Lookups find the newest snapshot before the requested timestamp, replay the
remaining journal events, and then *derive* higher-level context (WHOIS,
geolocation, fingerprinted software/device, vulnerabilities) by running the
registered enrichers — none of which is stored in the journal, matching the
paper's design of computing context at read time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.pipeline.journal import EventJournal
from repro.pipeline.state import live_services

__all__ = ["Enricher", "ReadSide"]

#: An enricher mutates the reconstructed view in place (adds derived keys).
Enricher = Callable[[Dict[str, Any]], None]


class ReadSide:
    """Timestamped entity lookups backed by the journal."""

    def __init__(self, journal: EventJournal, enrichers: Optional[List[Enricher]] = None) -> None:
        self.journal = journal
        self.enrichers: List[Enricher] = list(enrichers or [])
        self.lookups = 0

    def add_enricher(self, enricher: Enricher) -> None:
        self.enrichers.append(enricher)

    # ------------------------------------------------------------------

    def lookup(
        self,
        entity_id: str,
        at: Optional[float] = None,
        include_pending: bool = True,
        enrich: bool = True,
    ) -> Dict[str, Any]:
        """Reconstruct (and enrich) one entity at a timestamp.

        ``at=None`` serves the cached current state — the "fast lookup API"
        path; passing a timestamp exercises snapshot + replay.
        """
        self.lookups += 1
        state = self.journal.reconstruct(entity_id, at=at)
        if state["meta"].get("pseudo_host"):
            view_services: Dict[str, Any] = {}
        else:
            view_services = live_services(state, include_pending=include_pending)
        view = {
            "entity_id": entity_id,
            "at": at,
            "services": view_services,
            "meta": dict(state["meta"]),
            "first_seen": state["first_seen"],
            "last_event_time": state["last_event_time"],
            "derived": {},
        }
        if enrich:
            for enricher in self.enrichers:
                enricher(view)
        return view

    def exists(self, entity_id: str) -> bool:
        return self.journal.has_entity(entity_id)

    def history(self, entity_id: str) -> List[Dict[str, Any]]:
        """The entity's full event history (kind, time, payload keys)."""
        return [
            {"seq": e.seq, "time": e.time, "kind": e.kind, "payload": dict(e.payload)}
            for e in self.journal.events_for(entity_id)
        ]
