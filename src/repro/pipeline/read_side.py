"""The CQRS read (query) side: point-in-time reconstruction plus enrichment.

Lookups find the newest snapshot before the requested timestamp, replay the
remaining journal events, and then *derive* higher-level context (WHOIS,
geolocation, fingerprinted software/device, vulnerabilities) by running the
registered enrichers — none of which is stored in the journal, matching the
paper's design of computing context at read time.

Caching (opt-in): constructed with a
:class:`~repro.pipeline.cache.ReconstructionCache` and/or a view-cache
bound, repeated lookups of an unchanged entity cost one ``pickle.loads``
instead of reconstruct + enrich.  Validity is the entity's monotonic
version counter, so any write — including evictions — invalidates lazily
and the next lookup recomputes; results are bit-identical to the uncached
path (the perf-regression gates assert this).  The defaults
(``cache=None, view_cache_entries=0``) keep the original uncached
behaviour.
"""

from __future__ import annotations

import pickle
import threading
from typing import Any, Callable, Dict, List, Optional

from repro.pipeline.cache import MISS, ReconstructionCache, VersionedLRU
from repro.pipeline.journal import EventJournal
from repro.pipeline.state import live_services

__all__ = ["Enricher", "ReadSide"]

#: An enricher mutates the reconstructed view in place (adds derived keys).
Enricher = Callable[[Dict[str, Any]], None]


class ReadSide:
    """Timestamped entity lookups backed by the journal."""

    def __init__(
        self,
        journal: EventJournal,
        enrichers: Optional[List[Enricher]] = None,
        cache: Optional[ReconstructionCache] = None,
        view_cache_entries: int = 0,
    ) -> None:
        self.journal = journal
        self.enrichers: List[Enricher] = list(enrichers or [])
        self.lookups = 0
        #: Guards the lookup counter under the parallel batch paths (the
        #: caches carry their own locks).
        self._count_lock = threading.Lock()
        self.cache = cache
        self._views = VersionedLRU(view_cache_entries)
        #: Bumped when the enricher chain changes: view-cache entries built
        #: under an older chain must not be served.
        self._enricher_epoch = 0

    def add_enricher(self, enricher: Enricher) -> None:
        self.enrichers.append(enricher)
        self._enricher_epoch += 1

    # ------------------------------------------------------------------

    def lookup(
        self,
        entity_id: str,
        at: Optional[float] = None,
        include_pending: bool = True,
        enrich: bool = True,
        journal: Optional[EventJournal] = None,
    ) -> Dict[str, Any]:
        """Reconstruct (and enrich) one entity at a timestamp.

        ``at=None`` serves the cached current state — the "fast lookup API"
        path; passing a timestamp exercises snapshot + replay.  ``journal``
        overrides the backing journal for this one read (replica serving);
        override reads bypass both caches — their validity keys belong to
        the primary.
        """
        with self._count_lock:
            self.lookups += 1
        if journal is not None:
            return self._build_view(entity_id, at, include_pending, enrich, journal=journal)
        if not self._views.enabled:
            return self._build_view(entity_id, at, include_pending, enrich)
        version = self.journal.entity_version(entity_id)
        key = (entity_id, at, include_pending, enrich, self._enricher_epoch)
        blob = self._views.get(key, version)
        if blob is not MISS:
            return pickle.loads(blob)
        view = self._build_view(entity_id, at, include_pending, enrich)
        self._views.put(key, version, pickle.dumps(view, pickle.HIGHEST_PROTOCOL))
        return view

    def _build_view(
        self,
        entity_id: str,
        at: Optional[float],
        include_pending: bool,
        enrich: bool,
        journal: Optional[EventJournal] = None,
    ) -> Dict[str, Any]:
        if journal is not None:
            state = journal.reconstruct(entity_id, at=at)
        elif self.cache is not None:
            state = self.cache.reconstruct(entity_id, at=at)
        else:
            state = self.journal.reconstruct(entity_id, at=at)
        if state["meta"].get("pseudo_host"):
            view_services: Dict[str, Any] = {}
        else:
            view_services = live_services(state, include_pending=include_pending)
        view = {
            "entity_id": entity_id,
            "at": at,
            "services": view_services,
            "meta": dict(state["meta"]),
            "first_seen": state["first_seen"],
            "last_event_time": state["last_event_time"],
            "derived": {},
        }
        if enrich:
            for enricher in self.enrichers:
                enricher(view)
        return view

    def clear_caches(self) -> None:
        """Drop both read caches (failover can move versions *backwards*,
        which the lazy equality checks cannot distinguish from 'unchanged')."""
        if self.cache is not None:
            self.cache.clear()
        self._views.clear()

    def exists(self, entity_id: str) -> bool:
        return self.journal.has_entity(entity_id)

    def history(self, entity_id: str) -> List[Dict[str, Any]]:
        """The entity's full event history (kind, time, payload keys)."""
        return [
            {"seq": e.seq, "time": e.time, "kind": e.kind, "payload": dict(e.payload)}
            for e in self.journal.events_for(entity_id)
        ]

    # -- accounting --------------------------------------------------------

    def cache_report(self) -> Dict[str, Any]:
        """Hit/miss/invalidation counters for both read-side caches."""
        reconstruction = (
            self.cache.report()
            if self.cache is not None
            else {"hits": 0, "misses": 0, "invalidations": 0, "evictions": 0,
                  "hit_rate": 0.0, "lock_contention": 0, "entries": 0}
        )
        return {"reconstruction": reconstruction, "views": self._views.report()}
