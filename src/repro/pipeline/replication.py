"""Per-shard journal replication with committed watermarks and failover.

Production Censys keeps its map available through node loss: every
Bigtable tablet (here: a journal shard) has replicas that trail the
primary by a bounded amount, and a failed primary is replaced by its
most-advanced replica without losing acknowledged writes.  This module is
that availability layer for the reproduction:

* :class:`ReplicationBatch` — one committed WAL batch as shipped on the
  wire (the replication unit; ``seq`` is a 1-based per-shard batch index
  that keeps counting across failovers);
* :class:`ReplicaState` — one replica journal: applies batches strictly
  in order, buffers out-of-order arrivals, drops duplicates, and retains
  the applied batch log so it can be promoted;
* :class:`ShardReplicator` — the primary-side shipper: hooks the
  journal's commit path, retransmits unacknowledged batches to each
  replica over its own seeded :class:`~repro.pipeline.delivery.FaultyChannel`
  link, and exposes per-replica lag plus the **committed watermark**;
* :class:`ReplicatedShard` — one shard's primary + replicas + epoch
  bookkeeping with ``kill_primary()`` / ``fail_over()`` (the chaos
  harness's unit of destruction);
* :class:`ReplicationManager` — the platform-level wrapper over a
  :class:`~repro.pipeline.sharding.ShardedJournal`: one replicator per
  shard, a pump driven each tick, bounded-staleness replica reads, and
  whole-shard failover.

Watermark semantics
-------------------

Batch ``b`` is *acknowledged* once at least ``ack_replicas`` replicas
have applied it; the watermark is the highest batch index for which that
holds (equivalently the ``ack_replicas``-th largest replica position).
Writes are acked to the upstream source only up to the watermark, and the
watermark never exceeds the most-advanced replica's position — so failing
over to the most-advanced replica can never lose an acked write, for any
``ack_replicas >= 1``.  An unreplicated journal (``factor 0``) degenerates
to ``watermark == batches shipped`` (the WAL fsync is the ack), which is
exactly the pre-replication pipeline.

Staleness bound for replica reads
---------------------------------

A replica may serve a read only when (a) the whole-shard version gap
``primary.version - replica.version`` is within ``max_lag_events`` and
(b) the requested entity's version counter (PR 4) is *equal* on replica
and primary — equality makes the replica's answer bit-identical to the
primary's, so read-your-writes holds unconditionally: a write bumps the
entity version, and until the replica has applied it the read falls back
to the primary.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Dict, Iterable, Iterator, List, NamedTuple, Optional, Tuple, Union

from repro.pipeline.delivery import FaultyChannel
from repro.pipeline.events import Event
from repro.pipeline.faults import FaultInjector, FaultPlan
from repro.pipeline.journal import EventJournal, _EntityLog
from repro.pipeline.wal import WriteAheadLog

__all__ = [
    "ReplicationBatch",
    "ReplicationError",
    "ReplicaState",
    "BatchLog",
    "ShardReplicator",
    "ReplicatedShard",
    "ReplicationManager",
]


class ReplicationError(RuntimeError):
    """Replication protocol violation (sequence gap, no replica, ...)."""


class ReplicationBatch(NamedTuple):
    """One committed WAL batch on the replication wire.

    ``seq`` is the 1-based per-shard batch index (monotonic across
    failovers); the attribute name also makes a batch a valid
    :class:`~repro.pipeline.delivery.FaultyChannel` work item.  ``events``
    are the raw WAL event dicts after a canonical-JSON round trip, so a
    replica applies byte-for-byte what WAL recovery would replay.
    ``obs_high`` is the highest delivery sequence stamped into the batch
    (None when the batch carries no sequenced observation).
    """

    seq: int
    events: Tuple[Dict[str, Any], ...]
    obs_high: Optional[int]


def _wire_events(events: List[Dict[str, Any]]) -> Tuple[Dict[str, Any], ...]:
    """Serialize exactly like the WAL frames records, then parse back.

    This is the 'network hop': replicas must end up with the same objects
    a crash recovery would reconstruct (tuples become lists, keys become
    strings), keeping replica state byte-identical to the durable prefix.
    """
    blob = json.dumps(events, separators=(",", ":"), sort_keys=True, default=str)
    return tuple(json.loads(blob))


def _link_injector(
    plan: Optional[FaultPlan], shard_id: int, replica_id: int, epoch: int
) -> Optional[FaultInjector]:
    """A decorrelated injector for one primary→replica link.

    Links derive per-link seeds from the plan so every link has its own
    deterministic drop/dup/delay/reorder schedule (same plan, different
    decisions), replayable across runs.
    """
    if plan is None:
        return None
    seed = plan.seed + 7919 * (shard_id + 1) + 104729 * (replica_id + 1) + 15485863 * epoch
    return FaultInjector(dataclasses.replace(plan, seed=seed, crash_points=()))


class BatchLog:
    """An append-only batch log whose old prefix freezes to encoded bytes.

    Replication must retain every batch — promotion tail-replay and fresh
    replica catch-up both read from batch 1 — but keeping millions of
    live ``ReplicationBatch`` objects resident defeats journal compaction.
    ``freeze`` re-encodes a committed prefix as compact JSON blobs (the
    same canonical flavor as the wire, so decode round-trips exactly);
    slicing decodes frozen entries on demand, and the steady-state pump
    path only ever slices past the frozen boundary.
    """

    def __init__(self, batches: Optional[Union["BatchLog", Iterable[ReplicationBatch]]] = None):
        if isinstance(batches, BatchLog):
            self._frozen: List[bytes] = list(batches._frozen)
            self._tail: List[ReplicationBatch] = list(batches._tail)
        else:
            self._frozen = []
            self._tail = list(batches or [])
        #: Frozen entries decoded back to live batches (catch-up/promotion).
        self.decodes = 0

    def __len__(self) -> int:
        return len(self._frozen) + len(self._tail)

    @property
    def frozen_count(self) -> int:
        return len(self._frozen)

    def frozen_bytes(self) -> int:
        return sum(len(blob) for blob in self._frozen)

    def append(self, batch: ReplicationBatch) -> None:
        self._tail.append(batch)

    def _decode(self, blob: bytes) -> ReplicationBatch:
        self.decodes += 1
        seq, events, obs_high = json.loads(blob.decode("utf-8"))
        return ReplicationBatch(seq=seq, events=tuple(events), obs_high=obs_high)

    @staticmethod
    def _encode(batch: ReplicationBatch) -> bytes:
        return json.dumps(
            [batch.seq, list(batch.events), batch.obs_high],
            separators=(",", ":"),
            sort_keys=True,
            default=str,
        ).encode("utf-8")

    def __iter__(self) -> Iterator[ReplicationBatch]:
        for blob in self._frozen:
            yield self._decode(blob)
        yield from self._tail

    def __getitem__(self, item: Union[int, slice]) -> Any:
        n_frozen = len(self._frozen)
        if isinstance(item, slice):
            start, stop, step = item.indices(len(self))
            if step != 1:
                raise ValueError("BatchLog slices must be contiguous")
            return [
                self._decode(self._frozen[i]) if i < n_frozen else self._tail[i - n_frozen]
                for i in range(start, stop)
            ]
        if item < 0:
            item += len(self)
        if item < n_frozen:
            return self._decode(self._frozen[item])
        return self._tail[item - n_frozen]

    def freeze(self, through_seq: int) -> int:
        """Freeze batches with seq <= ``through_seq``; returns newly frozen.

        Batch at index i always carries seq i+1 (seqs are contiguous from
        1 within a lineage), so the boundary is a simple index cut.
        """
        target = min(through_seq, len(self))
        count = target - len(self._frozen)
        if count <= 0:
            return 0
        self._frozen.extend(self._encode(batch) for batch in self._tail[:count])
        del self._tail[:count]
        return count


class ReplicaState:
    """One replica journal: strictly-ordered batch application."""

    def __init__(self, replica_id: int, snapshot_every: int, channel: FaultyChannel) -> None:
        self.replica_id = replica_id
        self.journal = EventJournal(snapshot_every=snapshot_every)
        self.channel = channel
        #: The next batch seq this replica needs (applied prefix = next-1).
        self.next_seq = 1
        self._pending: Dict[int, ReplicationBatch] = {}
        #: Applied batches, retained for promotion tail-replay and for
        #: re-shipping to a fresh replacement replica.
        self.batch_log = BatchLog()
        self.applied_events = 0
        self.duplicates_dropped = 0

    @property
    def acked_seq(self) -> int:
        """Highest batch this replica has applied (its replication position)."""
        return self.next_seq - 1

    def offer(self, batch: ReplicationBatch) -> int:
        """One arrival off the wire; returns how many batches it unlocked."""
        if batch.seq < self.next_seq or batch.seq in self._pending:
            self.duplicates_dropped += 1
            return 0
        self._pending[batch.seq] = batch
        applied = 0
        while self.next_seq in self._pending:
            self._apply(self._pending.pop(self.next_seq))
            self.next_seq += 1
            applied += 1
        return applied

    def _apply(self, batch: ReplicationBatch) -> None:
        journal = self.journal
        for raw in batch.events:
            event = Event(
                entity_id=raw["e"], seq=raw["s"], time=raw["tm"], kind=raw["k"], payload=raw["p"]
            )
            log = journal._logs.setdefault(event.entity_id, _EntityLog())
            if event.seq != log.next_seq:
                raise ReplicationError(
                    f"replica {self.replica_id}: sequence gap for {event.entity_id}: "
                    f"expected {log.next_seq}, found {event.seq} in batch {batch.seq}"
                )
            journal._apply_append(log, event)
        self.batch_log.append(batch)
        self.applied_events += len(batch.events)

    def fence(self, epoch_channel: FaultyChannel) -> None:
        """Epoch fence at failover: the old primary is dead, so drop its
        buffered out-of-order batches (their seqs will be reused by the new
        primary with different content) and start a fresh link."""
        self._pending.clear()
        self.channel = epoch_channel

    def compact(self, *, min_fold_events: int = 1) -> int:
        """Bound this replica's memory: fold the journal's applied history
        into its in-memory cold tier and freeze the applied batch prefix.

        Only the applied prefix (<= acked_seq) freezes — those batches are
        durable on the primary by definition of the ack, and promotion can
        decode them back if this replica is ever chosen.  Returns events
        folded out of the resident journal.
        """
        from repro.pipeline.compaction import compact_journal_in_memory

        folded = compact_journal_in_memory(self.journal, min_fold_events=min_fold_events)
        self.batch_log.freeze(self.acked_seq)
        return folded


class ShardReplicator:
    """Ships one shard primary's committed batches to its replicas."""

    def __init__(
        self,
        primary: EventJournal,
        replication_factor: int = 0,
        plan: Optional[FaultPlan] = None,
        *,
        shard_id: int = 0,
        epoch: int = 0,
        ack_replicas: Optional[int] = None,
        replicas: Optional[List[ReplicaState]] = None,
        log: Optional[Union[BatchLog, List[ReplicationBatch]]] = None,
    ) -> None:
        if replication_factor < 0:
            raise ValueError("replication_factor must be >= 0")
        self.primary = primary
        self.plan = plan
        self.shard_id = shard_id
        self.epoch = epoch
        #: Every batch committed by (this lineage of) the primary, by seq.
        self.log = BatchLog(log)
        if replicas is None:
            replicas = [
                ReplicaState(
                    rid,
                    primary.snapshot_every,
                    FaultyChannel(_link_injector(plan, shard_id, rid, epoch)),
                )
                for rid in range(replication_factor)
            ]
        self.replicas = replicas
        if ack_replicas is None:
            ack_replicas = len(self.replicas)
        if self.replicas and not 1 <= ack_replicas <= len(self.replicas):
            raise ValueError(
                f"ack_replicas must be in [1, {len(self.replicas)}], got {ack_replicas}"
            )
        self.ack_replicas = ack_replicas if self.replicas else 0
        #: obs-seq high-water per batch prefix: _obs_cum[i] = max obs_seq
        #: stamped anywhere in batches 1..i+1 (-1 = none yet).
        self._obs_cum: List[int] = []
        cum = -1
        for batch in self.log:
            if batch.obs_high is not None and batch.obs_high > cum:
                cum = batch.obs_high
            self._obs_cum.append(cum)
        primary.commit_listener = self._on_commit

    # -- primary side ------------------------------------------------------

    def _on_commit(self, events: List[Dict[str, Any]]) -> None:
        """Journal commit hook: record the durable batch for shipping."""
        wired = _wire_events(events)
        obs_high: Optional[int] = None
        for raw in wired:
            seq = raw["p"].get("obs_seq")
            if seq is not None and (obs_high is None or seq > obs_high):
                obs_high = seq
        batch = ReplicationBatch(seq=len(self.log) + 1, events=wired, obs_high=obs_high)
        self.log.append(batch)
        prev = self._obs_cum[-1] if self._obs_cum else -1
        self._obs_cum.append(max(prev, obs_high) if obs_high is not None else prev)

    def pump(self, rounds: int = 1) -> int:
        """Run delivery rounds on every replica link; returns batches applied.

        Each round retransmits everything past the replica's position
        (at-least-once: duplicates and out-of-order arrivals are handled
        by the replica), exactly like the ingest source's redelivery loop.
        """
        applied = 0
        for _ in range(max(1, rounds)):
            for replica in self.replicas:
                pending = self.log[replica.acked_seq:]
                for batch in replica.channel.transmit(pending):
                    applied += replica.offer(batch)
        return applied

    # -- watermarks and lag ------------------------------------------------

    def watermark(self) -> int:
        """Highest batch seq applied by >= ``ack_replicas`` replicas.

        With no replicas the WAL fsync itself is the acknowledgement, so
        the watermark is simply every batch shipped.
        """
        if not self.replicas:
            return len(self.log)
        positions = sorted((r.acked_seq for r in self.replicas), reverse=True)
        return positions[self.ack_replicas - 1]

    def obs_watermark(self) -> int:
        """Highest delivery sequence covered by the watermark (-1 = none).

        Acking the upstream source through this value guarantees every
        acked observation survives failover to the most-advanced replica.
        """
        wm = self.watermark()
        return self._obs_cum[wm - 1] if wm > 0 else -1

    def most_advanced(self) -> ReplicaState:
        if not self.replicas:
            raise ReplicationError(f"shard {self.shard_id}: no replicas to promote")
        return max(self.replicas, key=lambda r: r.acked_seq)

    def lag_batches(self) -> List[int]:
        return [len(self.log) - r.acked_seq for r in self.replicas]

    def lag_events(self) -> List[int]:
        return [self.primary.version - r.journal.version for r in self.replicas]

    def freeze_log(self) -> int:
        """Freeze the primary-side batch log through the commit watermark.

        Batches past the watermark stay live — the pump path slices them
        every round and must not pay a decode per round.  Returns batches
        newly frozen.
        """
        return self.log.freeze(self.watermark())

    def report(self) -> Dict[str, Any]:
        return {
            "replicas": len(self.replicas),
            "epoch": self.epoch,
            "batches": len(self.log),
            "frozen_batches": self.log.frozen_count,
            "watermark": self.watermark(),
            "lag_batches": self.lag_batches(),
            "lag_events": self.lag_events(),
            "duplicates_dropped": [r.duplicates_dropped for r in self.replicas],
        }

    def detach(self) -> None:
        """Stop shipping (the primary is being killed or replaced)."""
        if self.primary.commit_listener is self._on_commit:
            self.primary.commit_listener = None


def _rebuild_journal(batch_log: BatchLog, snapshot_every: int) -> EventJournal:
    """Replay every retained batch into a fresh in-memory journal."""
    journal = EventJournal(snapshot_every=snapshot_every)
    for batch in batch_log:
        for raw in batch.events:
            event = Event(
                entity_id=raw["e"], seq=raw["s"], time=raw["tm"], kind=raw["k"], payload=raw["p"]
            )
            log = journal._logs.setdefault(event.entity_id, _EntityLog())
            if event.seq != log.next_seq:
                raise ReplicationError(
                    f"rebuild: sequence gap for {event.entity_id}: "
                    f"expected {log.next_seq}, found {event.seq} in batch {batch.seq}"
                )
            journal._apply_append(log, event)
    return journal


def promote_replica(
    replica: ReplicaState,
    wal_dir: str,
    *,
    segment_max_records: int = 128,
    fsync_every: int = 1,
    fault_injector: Optional[Any] = None,
) -> EventJournal:
    """Turn a replica journal into a durable primary: replay its retained
    batch tail into a fresh WAL directory and attach the log for appends.

    The replica applied every batch through the same bookkeeping as live
    appends, so after promotion the journal is byte-identical to a primary
    that had journaled exactly the replicated prefix — including the
    regenerated snapshot cadence.

    A replica that compacted in place (folded prefix + in-memory cold
    tier) is first rebuilt by full batch replay: the batch log retains
    every batch (frozen ones decode back), and the rebuilt journal is the
    exact uncompacted journal, so the WAL it seeds is identical to the
    never-compacted promotion.  Promotion is rare; steady-state replica
    memory stays bounded.
    """
    journal = replica.journal
    if any(log.base_seq for log in journal._logs.values()):
        journal = _rebuild_journal(replica.batch_log, journal.snapshot_every)
        replica.journal = journal
    wal = WriteAheadLog(
        wal_dir, segment_max_records=segment_max_records, fsync_every=fsync_every
    )
    for batch in replica.batch_log:
        wal.append_batch([dict(raw) for raw in batch.events])
    # With a group-commit window (fsync_every > 1) the replay tail may not
    # be fsynced yet; the promoted journal is about to claim the whole
    # batch log as durable, so make it true before the claim.
    wal.flush_commit_window()
    journal.wal = wal
    journal._durable_events = replica.applied_events
    journal.stats.wal_batches = len(replica.batch_log)
    journal.stats.wal_events = replica.applied_events
    journal.fault_injector = fault_injector
    return journal


def fail_over(
    replicator: ShardReplicator,
    wal_dir: str,
    *,
    segment_max_records: int = 128,
    fsync_every: int = 1,
    fault_injector: Optional[Any] = None,
) -> Tuple[EventJournal, ShardReplicator]:
    """Promote the most-advanced replica and rebuild the replication group.

    Returns ``(promoted journal, new replicator)``.  Surviving replicas
    keep their applied prefix (always a prefix of the promoted replica's
    log, since batches are applied strictly in order and per-seq content
    is identical) and get epoch-fenced channels; a fresh empty replica
    replaces the promoted one and catches up through normal retransmission.
    """
    replicator.detach()
    best = replicator.most_advanced()
    epoch = replicator.epoch + 1
    promoted = promote_replica(
        best,
        wal_dir,
        segment_max_records=segment_max_records,
        fsync_every=fsync_every,
        fault_injector=fault_injector,
    )
    survivors: List[ReplicaState] = []
    for replica in replicator.replicas:
        if replica is best:
            continue
        replica.fence(
            FaultyChannel(
                _link_injector(replicator.plan, replicator.shard_id, replica.replica_id, epoch)
            )
        )
        survivors.append(replica)
    if replicator.replicas:
        fresh = ReplicaState(
            best.replica_id,
            promoted.snapshot_every,
            FaultyChannel(
                _link_injector(replicator.plan, replicator.shard_id, best.replica_id, epoch)
            ),
        )
        survivors.append(fresh)
    new_replicator = ShardReplicator(
        promoted,
        plan=replicator.plan,
        shard_id=replicator.shard_id,
        epoch=epoch,
        ack_replicas=replicator.ack_replicas or None,
        replicas=survivors,
        log=best.batch_log,
    )
    return promoted, new_replicator


class ReplicatedShard:
    """One shard's primary + replicas + epoch bookkeeping.

    The chaos harness's unit: owns a directory of per-epoch WAL
    subdirectories (``epoch-00/`` for the original primary, ``epoch-01/``
    for the first promotion, ...) so a killed primary's WAL is abandoned
    in place — total node loss — and the promoted replica starts a clean
    durable lineage.
    """

    def __init__(
        self,
        directory: str,
        *,
        replication_factor: int = 2,
        plan: Optional[FaultPlan] = None,
        snapshot_every: int = 32,
        segment_max_records: int = 128,
        fsync_every: int = 1,
        ack_replicas: Optional[int] = None,
        fault_injector: Optional[Any] = None,
        shard_id: int = 0,
    ) -> None:
        self.directory = directory
        self.shard_id = shard_id
        self.segment_max_records = segment_max_records
        self.fsync_every = fsync_every
        self.epoch = 0
        self.fail_overs = 0
        self.primary = EventJournal(
            snapshot_every=snapshot_every,
            wal=WriteAheadLog(
                self.epoch_dir(0),
                segment_max_records=segment_max_records,
                fsync_every=fsync_every,
            ),
            fault_injector=fault_injector,
        )
        self.replicator = ShardReplicator(
            self.primary,
            replication_factor,
            plan,
            shard_id=shard_id,
            ack_replicas=ack_replicas,
        )

    def epoch_dir(self, epoch: int) -> str:
        return os.path.join(self.directory, f"epoch-{epoch:02d}")

    def pump(self, rounds: int = 1) -> int:
        return self.replicator.pump(rounds)

    def obs_watermark(self) -> int:
        return self.replicator.obs_watermark()

    def kill_primary(self) -> None:
        """Total node loss: the primary's memory and WAL dir are abandoned.

        The listener detaches *before* the close-flush so a dying primary
        cannot ship its final unacked batch, and the closed WAL merely
        keeps file handles tidy — nothing ever reads the dead epoch dir.
        """
        self.replicator.detach()
        self.primary.close()

    def fail_over(self) -> EventJournal:
        """Promote the most-advanced replica; resume ingest on it."""
        injector = self.primary.fault_injector
        self.epoch += 1
        self.fail_overs += 1
        promoted, self.replicator = fail_over(
            self.replicator,
            self.epoch_dir(self.epoch),
            segment_max_records=self.segment_max_records,
            fsync_every=self.fsync_every,
            fault_injector=injector,
        )
        self.primary = promoted
        return promoted

    def close(self) -> None:
        self.primary.close()


def _pump_replicator(replicator: ShardReplicator, rounds: int) -> int:
    """Module-level pump task so executors can fan shards out."""
    return replicator.pump(rounds)


class ReplicationManager:
    """Platform-level replication over a :class:`ShardedJournal`.

    One :class:`ShardReplicator` per shard attaches to the live shard
    journals; :meth:`pump` runs each tick (fanned across shards by the
    platform executor when one is configured); :meth:`replica_for_read`
    implements bounded-staleness reads; :meth:`fail_over` replaces one
    shard's primary in the router.
    """

    def __init__(
        self,
        journal: Any,
        replication_factor: int,
        wal_root: str,
        *,
        plan: Optional[FaultPlan] = None,
        ack_replicas: Optional[int] = None,
        serve_reads: bool = False,
        max_lag_events: int = 0,
        executor: Optional[Any] = None,
        segment_max_records: int = 128,
        fsync_every: int = 1,
    ) -> None:
        if replication_factor < 1:
            raise ValueError("ReplicationManager requires replication_factor >= 1")
        self.journal = journal
        self.wal_root = wal_root
        self.replication_factor = replication_factor
        self.serve_reads = serve_reads
        self.max_lag_events = max_lag_events
        self.executor = executor
        self.segment_max_records = segment_max_records
        self.fsync_every = fsync_every
        self.replicators = [
            ShardReplicator(
                shard_journal,
                replication_factor,
                plan,
                shard_id=shard,
                ack_replicas=ack_replicas,
            )
            for shard, shard_journal in enumerate(journal.journals)
        ]
        self.epochs = [0] * len(self.replicators)
        self.fail_overs = 0
        self.replica_reads_served = 0
        self.primary_fallbacks = 0

    def pump(self, rounds: int = 1) -> int:
        """One replication delivery round per shard (parallel when possible)."""
        ex = self.executor
        if ex is not None and not ex.inline and len(self.replicators) > 1:
            return sum(
                ex.map_shards(_pump_replicator, [(r, rounds) for r in self.replicators])
            )
        return sum(r.pump(rounds) for r in self.replicators)

    # -- bounded-staleness reads -------------------------------------------

    def replica_for_read(self, entity_id: str) -> Optional[EventJournal]:
        """The replica journal admitted to serve this read, or None.

        Admission requires the global lag bound *and* per-entity version
        equality with the primary (see the module docstring) — so an
        admitted replica returns the bit-identical answer the primary
        would, preserving read-your-writes.
        """
        if not self.serve_reads:
            return None
        shard = self.journal.shard_of(entity_id)
        replicator = self.replicators[shard]
        if not replicator.replicas:
            return None
        primary = self.journal.journals[shard]
        best = replicator.most_advanced()
        if primary.version - best.journal.version > self.max_lag_events:
            self.primary_fallbacks += 1
            return None
        if best.journal.entity_version(entity_id) != primary.entity_version(entity_id):
            self.primary_fallbacks += 1
            return None
        self.replica_reads_served += 1
        return best.journal

    # -- compaction composition --------------------------------------------

    def batch_limit_for(self, shard: int):
        """A callable giving the shard's commit watermark, for the segment
        compactor's ``batch_limit``: compaction must never fold WAL batches
        replicas have not acknowledged, or failover could promote a replica
        missing history the primary already discarded from its segments.

        Resolved through ``self.replicators`` at call time so the bound
        survives fail-over replacing the replicator object.
        """

        def _limit() -> int:
            return self.replicators[shard].watermark()

        return _limit

    def compact_replicas(self, *, min_fold_events: int = 1) -> int:
        """Fold every replica journal at its snapshot cadence and freeze
        acked batch-log prefixes (primary side too).  Returns total events
        folded out of replica memory."""
        folded = 0
        for replicator in self.replicators:
            for replica in replicator.replicas:
                folded += replica.compact(min_fold_events=min_fold_events)
            replicator.freeze_log()
        return folded

    # -- failover ----------------------------------------------------------

    def fail_over(self, shard: int) -> EventJournal:
        """Kill shard's primary, promote its most-advanced replica, and
        swap the promoted journal into the router.

        Derived read stores (search index, secondary pivots) are not
        rolled back — the caller (platform) clears read caches and the
        divergence window closes as retransmitted writes re-apply.
        """
        old = self.journal.journals[shard]
        self.replicators[shard].detach()
        old.close()
        self.epochs[shard] += 1
        wal_dir = os.path.join(
            self.wal_root, f"shard-{shard:02d}-epoch-{self.epochs[shard]:02d}"
        )
        promoted, self.replicators[shard] = fail_over(
            self.replicators[shard],
            wal_dir,
            segment_max_records=self.segment_max_records,
            fsync_every=self.fsync_every,
            fault_injector=old.fault_injector,
        )
        self.journal.replace_shard(shard, promoted)
        self.fail_overs += 1
        return promoted

    def close(self) -> None:
        """Detach listeners (replica journals are in-memory; promoted
        primaries live in the router and close with it)."""
        for replicator in self.replicators:
            replicator.detach()

    def report(self) -> Dict[str, Any]:
        return {
            "factor": self.replication_factor,
            "fail_overs": self.fail_overs,
            "serve_reads": self.serve_reads,
            "max_lag_events": self.max_lag_events,
            "replica_reads_served": self.replica_reads_served,
            "primary_fallbacks": self.primary_fallbacks,
            "shards": [r.report() for r in self.replicators],
        }
