"""Write-ahead log: append-only segments with length+checksum framing.

The durable backend for :class:`~repro.pipeline.journal.EventJournal`.
Events are committed in per-observation batches — one framed record per
batch — so an observation is either fully durable or not at all.  Records
use explicit framing so recovery can distinguish a *torn* final record
(the process died mid-write: discard it and keep the valid prefix) from
corruption in the middle of a segment (refuse to recover silently).

Record framing, one record per line::

    +----------+----------+------------------+----+
    | length:8 | crc32:8  | body (JSON, utf8)| \\n |
    +----------+----------+------------------+----+

``length`` and ``crc32`` are fixed-width lowercase hex of the body's byte
length and CRC-32.  Bodies are compact JSON with no embedded newlines, so
a segment doubles as a (framed) JSONL file readable with standard tools.

Segments rotate every ``segment_max_records`` records.  Snapshots are not
interleaved with events; they go to per-segment *sidecar* files
(``segment-00000.snap``) with the same framing, used at recovery time to
cross-check the deterministically regenerated snapshots.

Durability is governed by a *group-commit window*: every ``append_batch``
still reaches the OS page cache immediately (``flush``), but the fsync
that makes it durable may be deferred until ``group_commit_events``
records or ``group_commit_bytes`` bytes have accumulated since the last
sync (``fsync_every`` is the legacy alias for the event bound).  Callers
that need to act only once a batch is durable pass ``on_durable`` — the
callback queues until the covering fsync and fires immediately after it,
so replication ship-eligibility and subscription delivery stay anchored
to real durability even when many batches share one sync.

Two storage optimizations live at this layer:

* **streaming decode** — :func:`decode_segment` reads one frame at a
  time, so recovery's peak buffer is bounded by the largest single record
  (plus one read chunk), not by the segment size;
* **heartbeat encoding** — a ``service_refreshed`` event whose payload
  carries nothing beyond the service key (and delivery sequence) is the
  overwhelmingly common "re-observed, nothing changed" case.  On the wire
  it collapses to a compact positional ``{"hb": [...]}`` form and is
  expanded back to the canonical event dict on read, so every consumer
  above this layer (recovery, replication, compaction) sees identical
  event dicts while the segment bytes shrink.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "WalCorruptionError",
    "WalStats",
    "WriteAheadLog",
    "encode_record",
    "decode_segment",
    "encode_batch_events",
    "decode_batch_events",
]

_HEADER_LEN = 16  # 8 hex chars length + 8 hex chars crc32
_READ_CHUNK = 1 << 16
SEGMENT_PATTERN = "segment-%05d.log"
SIDECAR_PATTERN = "segment-%05d.snap"
_HB_KIND = "service_refreshed"


class WalCorruptionError(Exception):
    """A non-final WAL record failed validation (not a torn tail)."""


@dataclass(slots=True)
class WalStats:
    """Durable-storage accounting for one WAL instance."""

    records: int = 0
    segments: int = 0
    bytes_written: int = 0
    fsyncs: int = 0
    torn_writes: int = 0
    #: Re-observation events collapsed to the compact heartbeat wire form.
    heartbeats_encoded: int = 0


def encode_record(body: Dict[str, Any]) -> bytes:
    """Frame one record: fixed hex header (length+crc32) + JSON body + newline."""
    data = json.dumps(body, separators=(",", ":"), sort_keys=True, default=str).encode("utf-8")
    header = f"{len(data):08x}{zlib.crc32(data) & 0xFFFFFFFF:08x}".encode("ascii")
    return header + data + b"\n"


def _rest_is_tail(fh, offset: int) -> bool:
    """True when no record boundary exists at or after ``offset``.

    Streaming equivalent of "no newline in the rest of the file except
    possibly its very last byte": a bad record is only a torn tail when
    nothing after it could parse as another record start.
    """
    fh.seek(offset)
    pending_newline = False
    while True:
        chunk = fh.read(_READ_CHUNK)
        if not chunk:
            # A newline as the file's final byte does not start a new record.
            return True
        if pending_newline:
            return False
        if b"\n" in chunk[:-1]:
            return False
        pending_newline = chunk.endswith(b"\n")


def decode_segment(
    path: str,
    *,
    tolerate_torn_tail: bool,
    on_record: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> Tuple[List[Dict[str, Any]], int, int]:
    """Read one segment file; returns (records, valid_bytes, torn_discarded).

    Records are decoded one frame at a time, so peak memory is bounded by
    the largest single record rather than the segment size.  When
    ``on_record`` is given, each decoded record is passed to it and the
    returned record list is empty (fully streaming mode).

    A framing violation at the very end of the file is a torn write and is
    discarded (when ``tolerate_torn_tail``); anywhere else it is corruption.
    """
    records: List[Dict[str, Any]] = []
    sink = records.append if on_record is None else on_record
    with open(path, "rb") as fh:
        offset = 0
        while True:
            header = fh.read(_HEADER_LEN)
            if not header:
                return records, offset, 0
            torn_reason: Optional[str] = None
            tail_known: Optional[bool] = None
            if len(header) < _HEADER_LEN:
                torn_reason = "truncated header"
                tail_known = b"\n" not in header[:-1]
            else:
                try:
                    length = int(header[:8], 16)
                    crc = int(header[8:], 16)
                except ValueError:
                    torn_reason = "unparseable header"
                else:
                    framed = fh.read(length + 1)
                    if len(framed) < length + 1:
                        torn_reason = "truncated body"
                        tail_known = True
                    else:
                        body = framed[:-1]
                        if framed[-1:] != b"\n":
                            torn_reason = "missing record terminator"
                        elif (zlib.crc32(body) & 0xFFFFFFFF) != crc:
                            torn_reason = "checksum mismatch"
                        else:
                            try:
                                sink(json.loads(body.decode("utf-8")))
                            except (UnicodeDecodeError, json.JSONDecodeError):
                                torn_reason = "undecodable body"
            if torn_reason is None:
                offset = fh.tell()
                continue
            # The bad record must be the last thing in the file to count as torn.
            if tolerate_torn_tail and (tail_known if tail_known is not None else _rest_is_tail(fh, offset)):
                return records, offset, 1
            raise WalCorruptionError(f"{path}: {torn_reason} at byte {offset}")


def encode_batch_events(events: List[Dict[str, Any]]) -> Tuple[List[Dict[str, Any]], int]:
    """Compact-encode heartbeat events for the wire; returns (encoded, count).

    A ``service_refreshed`` event whose payload is just the service key plus
    an optional delivery sequence collapses to a positional
    ``{"hb": [entity, seq, time, key(, obs_seq)]}`` form.  Everything else
    passes through untouched.
    """
    out: List[Dict[str, Any]] = []
    heartbeats = 0
    for ev in events:
        payload = ev.get("p")
        if (
            ev.get("k") == _HB_KIND
            and isinstance(payload, dict)
            and "key" in payload
            and set(payload) <= {"key", "obs_seq"}
        ):
            hb = [ev["e"], ev["s"], ev["tm"], payload["key"]]
            if "obs_seq" in payload:
                hb.append(payload["obs_seq"])
            out.append({"hb": hb})
            heartbeats += 1
        else:
            out.append(ev)
    return out, heartbeats


def decode_batch_events(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Expand compact heartbeat entries back to canonical event dicts."""
    out: List[Dict[str, Any]] = []
    for ev in events:
        hb = ev.get("hb")
        if hb is None:
            out.append(ev)
            continue
        entity, seq, tm, key = hb[:4]
        payload: Dict[str, Any] = {"key": key}
        if len(hb) > 4:
            payload["obs_seq"] = hb[4]
        out.append({"e": entity, "s": seq, "tm": tm, "k": _HB_KIND, "p": payload})
    return out


@dataclass(slots=True)
class _ScanResult:
    """Everything recovery needs from one pass over a WAL directory."""

    batches: List[Dict[str, Any]] = field(default_factory=list)
    snapshots: List[Dict[str, Any]] = field(default_factory=list)
    torn_discarded: int = 0
    segment_indices: List[int] = field(default_factory=list)
    #: Records in the highest segment (so an appender can resume rotation).
    tail_records: int = 0


class WriteAheadLog:
    """Append-only framed segment files plus snapshot sidecars.

    Opening a directory that already holds segments resumes appending to the
    highest one, truncating a torn tail first (crash-consistent resume).
    """

    def __init__(
        self,
        directory: str,
        *,
        segment_max_records: int = 128,
        fsync_every: int = 1,
        group_commit_events: Optional[int] = None,
        group_commit_bytes: Optional[int] = None,
        start_after: int = -1,
        crash_hook: Optional[Callable[[str], None]] = None,
    ) -> None:
        if segment_max_records < 1:
            raise ValueError("segment_max_records must be >= 1")
        if fsync_every < 1:
            raise ValueError("fsync_every must be >= 1")
        if group_commit_events is not None and group_commit_events < 1:
            raise ValueError("group_commit_events must be >= 1")
        if group_commit_bytes is not None and group_commit_bytes < 1:
            raise ValueError("group_commit_bytes must be >= 1")
        self.directory = str(directory)
        self.segment_max_records = segment_max_records
        #: Commit window: fsync after this many records (fsync_every alias)...
        self.group_commit_events = (
            group_commit_events if group_commit_events is not None else fsync_every
        )
        #: ...or after this many bytes, whichever fills first (None = events only).
        self.group_commit_bytes = group_commit_bytes
        self.stats = WalStats()
        self._fh = None
        self._sidecar_fh = None
        self._records_since_fsync = 0
        self._window_bytes = 0
        #: Durability callbacks queued behind the open commit window.
        self._pending_durable: List[Callable[[], None]] = []
        #: Chaos instrumentation: called with "pre_fsync" just before the
        #: covering fsync of a commit window and "post_fsync" right after
        #: its durability callbacks drain.  A hook that raises simulates a
        #: crash at that exact point (close-path fsyncs never fire it).
        self.crash_hook = crash_hook
        os.makedirs(self.directory, exist_ok=True)
        scan = self.scan(self.directory, truncate_torn=True, start_after=start_after)
        self._segment_index = scan.segment_indices[-1] if scan.segment_indices else start_after + 1
        self._segment_records = scan.tail_records
        self.stats.segments = max(1, len(scan.segment_indices))
        self._open_segment()

    @property
    def fsync_every(self) -> int:
        """Legacy alias for the event bound of the group-commit window."""
        return self.group_commit_events

    # -- file management ---------------------------------------------------

    def _segment_path(self, index: int) -> str:
        return os.path.join(self.directory, SEGMENT_PATTERN % index)

    def _sidecar_path(self, index: int) -> str:
        return os.path.join(self.directory, SIDECAR_PATTERN % index)

    def _open_segment(self) -> None:
        self._close_handles()
        self._fh = open(self._segment_path(self._segment_index), "ab")
        self._sidecar_fh = open(self._sidecar_path(self._segment_index), "ab")

    def _close_handles(self) -> None:
        for fh in (self._fh, self._sidecar_fh):
            if fh is not None and not fh.closed:
                fh.flush()
                os.fsync(fh.fileno())
                self.stats.fsyncs += 1
                fh.close()
        self._fh = self._sidecar_fh = None
        # The segment fsync above covered any open commit window.
        self._records_since_fsync = 0
        self._window_bytes = 0
        self._drain_durable()

    def _maybe_rotate(self) -> None:
        if self._segment_records >= self.segment_max_records:
            self._segment_index += 1
            self._segment_records = 0
            self.stats.segments += 1
            self._open_segment()

    def close(self) -> None:
        self._close_handles()

    # -- append path -------------------------------------------------------

    def _drain_durable(self) -> None:
        """Fire the durability callbacks covered by the fsync that just ran."""
        pending, self._pending_durable = self._pending_durable, []
        for callback in pending:
            callback()

    def _fsync_now(self) -> None:
        """One real fsync on the open segment; exact-counts and drains."""
        if self.crash_hook is not None:
            self.crash_hook("pre_fsync")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.stats.fsyncs += 1
        self._records_since_fsync = 0
        self._window_bytes = 0
        self._drain_durable()
        if self.crash_hook is not None:
            self.crash_hook("post_fsync")

    def flush_commit_window(self) -> None:
        """Force the open group-commit window durable (no-op when clean)."""
        if self._fh is None or self._fh.closed:
            return
        if self._records_since_fsync == 0 and not self._pending_durable:
            return
        self._fsync_now()

    def append_batch(
        self,
        events: List[Dict[str, Any]],
        *,
        torn: bool = False,
        on_durable: Optional[Callable[[], None]] = None,
    ) -> None:
        """Append one committed batch (one framed record) to the window.

        The record is flushed to the OS immediately but only fsynced when
        the group-commit window fills (or :meth:`flush_commit_window` is
        called); ``on_durable`` fires right after the covering fsync.  With
        the default window of one event this degenerates to fsync-per-batch
        with the callback firing synchronously — the reference behavior.

        ``torn=True`` simulates a crash mid-write: only a prefix of the framed
        record reaches the file and no newline terminator is written.  The
        caller is expected to raise a simulated crash immediately after.  The
        fsync taken to persist the torn prefix also covers (and so makes
        durable) any complete batches pending in the window.
        """
        self._maybe_rotate()
        encoded, heartbeats = encode_batch_events(events)
        record = encode_record({"t": "batch", "events": encoded})
        self.stats.heartbeats_encoded += heartbeats
        if torn:
            cut = max(_HEADER_LEN + 1, len(record) // 2)
            self._fh.write(record[:cut])
            self.stats.torn_writes += 1
            self._fsync_now()  # torn batch itself queued no callback
            return
        self._fh.write(record)
        self._fh.flush()
        self._segment_records += 1
        self.stats.records += 1
        self.stats.bytes_written += len(record)
        self._records_since_fsync += 1
        self._window_bytes += len(record)
        if on_durable is not None:
            self._pending_durable.append(on_durable)
        if self._records_since_fsync >= self.group_commit_events or (
            self.group_commit_bytes is not None
            and self._window_bytes >= self.group_commit_bytes
        ):
            self._fsync_now()

    def append_snapshot(
        self, entity_id: str, seq_after: int, time: float, state: Dict[str, Any]
    ) -> None:
        """Write one snapshot record to the current segment's sidecar."""
        record = encode_record(
            {"t": "snap", "entity": entity_id, "seq_after": seq_after, "time": time, "state": state}
        )
        self._sidecar_fh.write(record)
        self._sidecar_fh.flush()
        self.stats.bytes_written += len(record)

    # -- recovery scan -----------------------------------------------------

    def sealed_segments(self) -> List[int]:
        """Indices of on-disk segments no longer open for append (sorted)."""
        indices = sorted(
            int(name[len("segment-") : -len(".log")])
            for name in os.listdir(self.directory)
            if name.startswith("segment-") and name.endswith(".log")
        )
        return [index for index in indices if index < self._segment_index]

    # -- recovery scan -----------------------------------------------------

    @staticmethod
    def scan(directory: str, *, truncate_torn: bool = False, start_after: int = -1) -> _ScanResult:
        """Read every segment (and sidecar) in order, validating framing.

        Segments with index <= ``start_after`` are skipped entirely — the
        compaction manifest covers them, and leftover files below that index
        (a crash between manifest swap and segment deletion) must not be
        replayed twice.

        A torn record is tolerated only at the tail of the *final* segment
        (or final sidecar); with ``truncate_torn`` the file is truncated back
        to its last valid record so appending can resume safely.  Any other
        framing violation raises :class:`WalCorruptionError`.
        """
        result = _ScanResult()
        if not os.path.isdir(directory):
            return result
        indices = sorted(
            int(name[len("segment-") : -len(".log")])
            for name in os.listdir(directory)
            if name.startswith("segment-") and name.endswith(".log")
        )
        indices = [index for index in indices if index > start_after]
        result.segment_indices = indices
        for pos, index in enumerate(indices):
            is_last = pos == len(indices) - 1
            path = os.path.join(directory, SEGMENT_PATTERN % index)
            records, valid_bytes, torn = decode_segment(path, tolerate_torn_tail=is_last)
            if torn and truncate_torn:
                with open(path, "ab") as fh:
                    fh.truncate(valid_bytes)
            result.torn_discarded += torn
            for record in records:
                if record.get("t") != "batch":
                    raise WalCorruptionError(f"{path}: unexpected record type {record.get('t')!r}")
                record["events"] = decode_batch_events(record["events"])
                result.batches.append(record)
            if is_last:
                result.tail_records = len(records)
            sidecar = os.path.join(directory, SIDECAR_PATTERN % index)
            if os.path.exists(sidecar):
                snaps, valid_bytes, torn = decode_segment(sidecar, tolerate_torn_tail=is_last)
                if torn and truncate_torn:
                    with open(sidecar, "ab") as fh:
                        fh.truncate(valid_bytes)
                result.torn_discarded += torn
                for record in snaps:
                    if record.get("t") != "snap":
                        raise WalCorruptionError(
                            f"{sidecar}: unexpected record type {record.get('t')!r}"
                        )
                    result.snapshots.append(record)
        return result
