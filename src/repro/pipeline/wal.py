"""Write-ahead log: append-only segments with length+checksum framing.

The durable backend for :class:`~repro.pipeline.journal.EventJournal`.
Events are committed in per-observation batches — one framed record per
batch — so an observation is either fully durable or not at all.  Records
use explicit framing so recovery can distinguish a *torn* final record
(the process died mid-write: discard it and keep the valid prefix) from
corruption in the middle of a segment (refuse to recover silently).

Record framing, one record per line::

    +----------+----------+------------------+----+
    | length:8 | crc32:8  | body (JSON, utf8)| \\n |
    +----------+----------+------------------+----+

``length`` and ``crc32`` are fixed-width lowercase hex of the body's byte
length and CRC-32.  Bodies are compact JSON with no embedded newlines, so
a segment doubles as a (framed) JSONL file readable with standard tools.

Segments rotate every ``segment_max_records`` records.  Snapshots are not
interleaved with events; they go to per-segment *sidecar* files
(``segment-00000.snap``) with the same framing, used at recovery time to
cross-check the deterministically regenerated snapshots.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "WalCorruptionError",
    "WalStats",
    "WriteAheadLog",
    "encode_record",
    "decode_segment",
]

_HEADER_LEN = 16  # 8 hex chars length + 8 hex chars crc32
SEGMENT_PATTERN = "segment-%05d.log"
SIDECAR_PATTERN = "segment-%05d.snap"


class WalCorruptionError(Exception):
    """A non-final WAL record failed validation (not a torn tail)."""


@dataclass(slots=True)
class WalStats:
    """Durable-storage accounting for one WAL instance."""

    records: int = 0
    segments: int = 0
    bytes_written: int = 0
    fsyncs: int = 0
    torn_writes: int = 0


def encode_record(body: Dict[str, Any]) -> bytes:
    """Frame one record: fixed hex header (length+crc32) + JSON body + newline."""
    data = json.dumps(body, separators=(",", ":"), sort_keys=True, default=str).encode("utf-8")
    header = f"{len(data):08x}{zlib.crc32(data) & 0xFFFFFFFF:08x}".encode("ascii")
    return header + data + b"\n"


def _decode_buffer(
    raw: bytes, *, path: str, tolerate_torn_tail: bool
) -> Tuple[List[Dict[str, Any]], int, int]:
    """Parse framed records; returns (records, valid_byte_length, torn_discarded).

    A framing violation at the very end of the buffer is a torn write and is
    discarded (when ``tolerate_torn_tail``); anywhere else it is corruption.
    """
    records: List[Dict[str, Any]] = []
    offset = 0
    n = len(raw)
    while offset < n:
        torn_reason: Optional[str] = None
        end = offset
        if offset + _HEADER_LEN > n:
            torn_reason = "truncated header"
        else:
            header = raw[offset : offset + _HEADER_LEN]
            try:
                length = int(header[:8], 16)
                crc = int(header[8:], 16)
            except ValueError:
                torn_reason = "unparseable header"
            else:
                end = offset + _HEADER_LEN + length + 1
                if end > n:
                    torn_reason = "truncated body"
                else:
                    body = raw[offset + _HEADER_LEN : end - 1]
                    if raw[end - 1 : end] != b"\n":
                        torn_reason = "missing record terminator"
                    elif (zlib.crc32(body) & 0xFFFFFFFF) != crc:
                        torn_reason = "checksum mismatch"
                    else:
                        try:
                            records.append(json.loads(body.decode("utf-8")))
                        except (UnicodeDecodeError, json.JSONDecodeError):
                            torn_reason = "undecodable body"
        if torn_reason is None:
            offset = end
            continue
        # The bad record must be the last thing in the buffer to count as torn.
        if tolerate_torn_tail and _is_tail(raw, offset, end):
            return records, offset, 1
        raise WalCorruptionError(f"{path}: {torn_reason} at byte {offset}")
    return records, offset, 0


def _is_tail(raw: bytes, offset: int, end: int) -> bool:
    """True when the record starting at ``offset`` is the buffer's last."""
    if end >= len(raw):
        return True
    # A bad header length can point past a valid record boundary; treat the
    # record as the tail only if nothing after it parses as a record start.
    rest = raw[offset:]
    return b"\n" not in rest[:-1]


def decode_segment(path: str, *, tolerate_torn_tail: bool) -> Tuple[List[Dict[str, Any]], int, int]:
    """Read one segment file; returns (records, valid_bytes, torn_discarded)."""
    with open(path, "rb") as fh:
        raw = fh.read()
    return _decode_buffer(raw, path=path, tolerate_torn_tail=tolerate_torn_tail)


@dataclass(slots=True)
class _ScanResult:
    """Everything recovery needs from one pass over a WAL directory."""

    batches: List[Dict[str, Any]] = field(default_factory=list)
    snapshots: List[Dict[str, Any]] = field(default_factory=list)
    torn_discarded: int = 0
    segment_indices: List[int] = field(default_factory=list)
    #: Records in the highest segment (so an appender can resume rotation).
    tail_records: int = 0


class WriteAheadLog:
    """Append-only framed segment files plus snapshot sidecars.

    Opening a directory that already holds segments resumes appending to the
    highest one, truncating a torn tail first (crash-consistent resume).
    """

    def __init__(
        self,
        directory: str,
        *,
        segment_max_records: int = 128,
        fsync_every: int = 1,
    ) -> None:
        if segment_max_records < 1:
            raise ValueError("segment_max_records must be >= 1")
        if fsync_every < 1:
            raise ValueError("fsync_every must be >= 1")
        self.directory = str(directory)
        self.segment_max_records = segment_max_records
        self.fsync_every = fsync_every
        self.stats = WalStats()
        self._fh = None
        self._sidecar_fh = None
        self._records_since_fsync = 0
        os.makedirs(self.directory, exist_ok=True)
        scan = self.scan(self.directory, truncate_torn=True)
        self._segment_index = scan.segment_indices[-1] if scan.segment_indices else 0
        self._segment_records = scan.tail_records
        self.stats.segments = max(1, len(scan.segment_indices))
        self._open_segment()

    # -- file management ---------------------------------------------------

    def _segment_path(self, index: int) -> str:
        return os.path.join(self.directory, SEGMENT_PATTERN % index)

    def _sidecar_path(self, index: int) -> str:
        return os.path.join(self.directory, SIDECAR_PATTERN % index)

    def _open_segment(self) -> None:
        self._close_handles()
        self._fh = open(self._segment_path(self._segment_index), "ab")
        self._sidecar_fh = open(self._sidecar_path(self._segment_index), "ab")

    def _close_handles(self) -> None:
        for fh in (self._fh, self._sidecar_fh):
            if fh is not None and not fh.closed:
                fh.flush()
                os.fsync(fh.fileno())
                fh.close()
        self._fh = self._sidecar_fh = None

    def _maybe_rotate(self) -> None:
        if self._segment_records >= self.segment_max_records:
            self._segment_index += 1
            self._segment_records = 0
            self.stats.segments += 1
            self._open_segment()

    def close(self) -> None:
        self._close_handles()

    # -- append path -------------------------------------------------------

    def append_batch(self, events: List[Dict[str, Any]], *, torn: bool = False) -> None:
        """Durably append one committed batch (one framed record).

        ``torn=True`` simulates a crash mid-write: only a prefix of the framed
        record reaches the file and no newline terminator is written.  The
        caller is expected to raise a simulated crash immediately after.
        """
        self._maybe_rotate()
        record = encode_record({"t": "batch", "events": events})
        if torn:
            cut = max(_HEADER_LEN + 1, len(record) // 2)
            self._fh.write(record[:cut])
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self.stats.torn_writes += 1
            return
        self._fh.write(record)
        self._fh.flush()
        self._segment_records += 1
        self.stats.records += 1
        self.stats.bytes_written += len(record)
        self._records_since_fsync += 1
        if self._records_since_fsync >= self.fsync_every:
            os.fsync(self._fh.fileno())
            self.stats.fsyncs += 1
            self._records_since_fsync = 0

    def append_snapshot(
        self, entity_id: str, seq_after: int, time: float, state: Dict[str, Any]
    ) -> None:
        """Write one snapshot record to the current segment's sidecar."""
        record = encode_record(
            {"t": "snap", "entity": entity_id, "seq_after": seq_after, "time": time, "state": state}
        )
        self._sidecar_fh.write(record)
        self._sidecar_fh.flush()
        self.stats.bytes_written += len(record)

    # -- recovery scan -----------------------------------------------------

    @staticmethod
    def scan(directory: str, *, truncate_torn: bool = False) -> _ScanResult:
        """Read every segment (and sidecar) in order, validating framing.

        A torn record is tolerated only at the tail of the *final* segment
        (or final sidecar); with ``truncate_torn`` the file is truncated back
        to its last valid record so appending can resume safely.  Any other
        framing violation raises :class:`WalCorruptionError`.
        """
        result = _ScanResult()
        if not os.path.isdir(directory):
            return result
        indices = sorted(
            int(name[len("segment-") : -len(".log")])
            for name in os.listdir(directory)
            if name.startswith("segment-") and name.endswith(".log")
        )
        result.segment_indices = indices
        for pos, index in enumerate(indices):
            is_last = pos == len(indices) - 1
            path = os.path.join(directory, SEGMENT_PATTERN % index)
            records, valid_bytes, torn = decode_segment(path, tolerate_torn_tail=is_last)
            if torn and truncate_torn:
                with open(path, "ab") as fh:
                    fh.truncate(valid_bytes)
            result.torn_discarded += torn
            for record in records:
                if record.get("t") != "batch":
                    raise WalCorruptionError(f"{path}: unexpected record type {record.get('t')!r}")
                result.batches.append(record)
            if is_last:
                result.tail_records = len(records)
            sidecar = os.path.join(directory, SIDECAR_PATTERN % index)
            if os.path.exists(sidecar):
                snaps, valid_bytes, torn = decode_segment(sidecar, tolerate_torn_tail=is_last)
                if torn and truncate_torn:
                    with open(sidecar, "ab") as fh:
                        fh.truncate(valid_bytes)
                result.torn_discarded += torn
                for record in snaps:
                    if record.get("t") != "snap":
                        raise WalCorruptionError(
                            f"{sidecar}: unexpected record type {record.get('t')!r}"
                        )
                    result.snapshots.append(record)
        return result
