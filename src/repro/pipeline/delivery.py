"""At-least-once observation delivery over a faulty channel.

Real scanner fleets deliver results over queues that drop, duplicate,
delay, and reorder.  This module models that path explicitly so the chaos
harness can prove the write side converges anyway:

* :class:`AtLeastOnceSource` — retransmits unacknowledged work each round
  (the scanner / queue redelivery loop);
* :class:`FaultyChannel` — applies a :class:`~repro.pipeline.faults.FaultPlan`'s
  drop / duplicate / delay / reorder schedule to each transmission round;
* :class:`Resequencer` — restores source order on the consumer side from
  the monotonic per-item sequence numbers, discarding duplicates, so the
  write side observes the exact oracle order (TCP-style gap buffering).

Sequence numbers are assigned by the producer (``obs_seq`` on
:class:`~repro.pipeline.write_side.ScanObservation`); after a crash the
consumer resumes the resequencer at ``max durable seq + 1`` and the source
re-marks everything at or below it as acknowledged.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.pipeline.faults import FaultInjector

__all__ = ["AtLeastOnceSource", "FaultyChannel", "Resequencer", "item_seq"]


def item_seq(item: Any) -> int:
    """The delivery sequence number of a work item (``obs_seq`` or ``seq``)."""
    seq = getattr(item, "obs_seq", None)
    if seq is None:
        seq = getattr(item, "seq", None)
    if seq is None:
        raise ValueError(f"work item {item!r} has no sequence number")
    return seq


class AtLeastOnceSource:
    """Holds the scripted workload; retransmits until acknowledged."""

    def __init__(self, items: Iterable[Any]) -> None:
        self._items: Dict[int, Any] = {}
        for item in items:
            seq = item_seq(item)
            if seq in self._items:
                raise ValueError(f"duplicate work-item sequence {seq}")
            self._items[seq] = item
        self._unacked = set(self._items)
        self.transmissions = 0

    def pending(self) -> List[Any]:
        """Everything unacknowledged, in sequence order (one round's send)."""
        batch = [self._items[seq] for seq in sorted(self._unacked)]
        self.transmissions += len(batch)
        return batch

    def ack(self, seq: int) -> None:
        self._unacked.discard(seq)

    def ack_through(self, seq: int) -> None:
        """Acknowledge every item with sequence <= ``seq`` (crash recovery)."""
        self._unacked = {s for s in self._unacked if s > seq}

    def reset_all_unacked(self) -> None:
        """Forget every ack (a consumer that lost all state)."""
        self._unacked = set(self._items)

    @property
    def done(self) -> bool:
        return not self._unacked

    @property
    def outstanding(self) -> int:
        return len(self._unacked)


class FaultyChannel:
    """One-way lossy channel driven by a deterministic fault injector.

    Each :meth:`transmit` call is one delivery round: per item the injector
    decides drop (the source will retransmit), duplicate, or delay (held in
    the channel for k rounds); finally seeded adjacent swaps reorder the
    round's deliveries.  All decisions are keyed by (item seq, attempt
    number), so the schedule is replayable regardless of retransmission
    counts.
    """

    def __init__(self, injector: Optional[FaultInjector]) -> None:
        self.injector = injector
        self._held: List[Tuple[int, Any]] = []  # (deliver_at_round, item)
        self._attempts: Dict[int, int] = {}
        self.round_no = 0

    def transmit(self, items: Iterable[Any]) -> List[Any]:
        """Deliver one round; returns the items that arrive, in arrival order."""
        self.round_no += 1
        if self.injector is None:
            return list(items)
        arriving: List[Any] = []
        still_held: List[Tuple[int, Any]] = []
        for deliver_at, item in self._held:
            if deliver_at <= self.round_no:
                arriving.append(item)
            else:
                still_held.append((deliver_at, item))
        self._held = still_held
        for item in items:
            seq = item_seq(item)
            attempt = self._attempts.get(seq, 0)
            self._attempts[seq] = attempt + 1
            if self.injector.should_drop(seq, attempt):
                continue
            copies = 2 if self.injector.should_duplicate(seq, attempt) else 1
            delay = self.injector.delay_rounds(seq, attempt)
            for _ in range(copies):
                if delay:
                    self._held.append((self.round_no + delay, item))
                else:
                    arriving.append(item)
        # Seeded adjacent swaps: bounded, deterministic reordering.
        for pos in range(len(arriving) - 1):
            if self.injector.should_swap(self.round_no, pos):
                arriving[pos], arriving[pos + 1] = arriving[pos + 1], arriving[pos]
        return arriving

    def reset(self) -> None:
        """Drop in-flight items (a crash loses whatever was in the channel)."""
        self._held.clear()

    @property
    def in_flight(self) -> int:
        return len(self._held)


class Resequencer:
    """Restores total source order from sequence numbers (gap buffering)."""

    def __init__(self, next_seq: int = 0) -> None:
        self.next_seq = next_seq
        self._buffer: Dict[int, Any] = {}
        self.duplicates_dropped = 0
        self.buffered_high_water = 0

    def push(self, item: Any) -> List[Any]:
        """Offer one arrival; returns the in-order run it unlocks (maybe [])."""
        seq = item_seq(item)
        if seq < self.next_seq or seq in self._buffer:
            self.duplicates_dropped += 1
            return []
        self._buffer[seq] = item
        self.buffered_high_water = max(self.buffered_high_water, len(self._buffer))
        ready: List[Any] = []
        while self.next_seq in self._buffer:
            ready.append(self._buffer.pop(self.next_seq))
            self.next_seq += 1
        return ready

    @property
    def buffered(self) -> int:
        return len(self._buffer)
