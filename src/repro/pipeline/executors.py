"""Parallel shard execution backends (the tablet-server worker pool).

Production Censys fans every scatter-gather — search, aggregation,
recovery — across shard backends that live on *other machines*; the
gateway's cost per query is one RPC per shard plus a k-way merge, and the
shards compute concurrently.  Until now this reproduction's sharded
layers (:class:`~repro.search.sharded.ShardedSearchIndex`,
:class:`~repro.pipeline.sharding.ShardedJournal`) looped over shards
serially, so adding shards bought isolation but zero speedup.

This module is the execution tier between the routers and the shards:

* :class:`SerialExecutor` — the in-process reference backend.  Runs every
  shard task inline, in shard order; the default everywhere, bit-identical
  to the pre-executor code path.
* :class:`ThreadShardExecutor` — a persistent thread pool.  Shard tasks
  overlap in wall-clock time; per-shard state stays in-process (the shard
  objects carry their own locks), so it composes with the versioned
  read-path caches unchanged.
* :class:`ProcessShardExecutor` — persistent worker *processes*, one per
  shard slot, speaking a small pickled message protocol over pipes.  Shard
  state is **replicated** into the worker keyed on the shard's monotonic
  version counter: the parent ships a pickled snapshot only when the
  worker's copy is stale (reads are the common case, so steady state ships
  a few hundred bytes per op), exactly the generation-validated replica
  model a real serving tier uses.  Work that cannot be pickled (closures
  over live platform state, e.g. the serving layer's batch lookups) falls
  back to an internal thread pool and is counted in ``report()``.

All three share one interface:

``map_shards(fn, args_list)``
    Apply ``fn(*args_list[i])`` per shard task, returning results in task
    order.  ``fn`` may be any callable for the serial/thread backends; the
    process backend requires a picklable (module-level) ``fn`` and
    picklable args, falling back to threads otherwise.
``map_stateful(fn, states, args_list, key=, versions=, snapshot=)``
    Apply ``fn(states[i], *args_list[i])`` per shard.  The serial and
    thread backends use the live ``states`` objects; the process backend
    uses ``versions[i]`` plus the ``snapshot(i) -> (version, blob)``
    callback to maintain its per-worker replicas.

Simulated shard RPC latency
---------------------------

The repository models its distributed substrate rather than deploying it
(storage bytes are modeled, the Internet is simulated), and the executors
follow suit: ``latency_ms`` models the network hop to a remote shard
backend.  Each shard task sleeps ``latency_ms`` before computing — the
serial backend therefore pays ``shards x latency`` per scatter while the
parallel backends overlap the hops, which is precisely the wall-clock
shape of the paper's gateway -> Elasticsearch-shard fan-out.  The default
is ``0.0``: no behavioural or timing change anywhere unless a benchmark
asks for the model.

Nested fan-out (a batch request whose per-request work scatters again)
runs the inner scatter inline on the worker that owns the outer task —
one level of parallelism, no pool-starvation deadlocks.

Determinism contract: every backend returns results in task order, and
each task is a pure function of its arguments plus the shard state it was
given, so results are bit-identical to :class:`SerialExecutor` — the
property ``tests/test_parallel_shards.py`` pins for shards in {1, 2, 4}.
"""

from __future__ import annotations

import itertools
import pickle
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ShardExecutor",
    "SerialExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "ShardTaskError",
    "make_executor",
]


class ShardTaskError(RuntimeError):
    """A shard task raised; carries the worker-side traceback text and,
    when known, which task index in the scatter failed (``task_index``)
    so callers can attribute the failure to a shard."""

    def __init__(self, message: str, task_index: Optional[int] = None) -> None:
        if task_index is not None:
            message = f"shard task {task_index} failed: {message}"
        super().__init__(message)
        self.task_index = task_index


#: Thread-local nesting depth: >0 means "already inside a shard task", so
#: inner scatters run inline instead of re-entering a (possibly full) pool.
_TASK_DEPTH = threading.local()


def _depth() -> int:
    return getattr(_TASK_DEPTH, "value", 0)


def _entered() -> None:
    _TASK_DEPTH.value = _depth() + 1


def _exited() -> None:
    _TASK_DEPTH.value = _depth() - 1


class ShardExecutor:
    """Base class and common bookkeeping; the base semantics are serial."""

    kind = "serial"

    def __init__(self, latency_ms: float = 0.0) -> None:
        if latency_ms < 0:
            raise ValueError("latency_ms must be >= 0")
        self.latency_ms = latency_ms
        self._stats_lock = threading.Lock()
        self.stats: Dict[str, int] = {"batches": 0, "tasks": 0, "inline_fallbacks": 0}

    # -- latency model -----------------------------------------------------

    def _hop(self) -> None:
        """One simulated RPC hop to a shard backend (no-op by default)."""
        if self.latency_ms > 0:
            time.sleep(self.latency_ms / 1e3)

    @property
    def inline(self) -> bool:
        """True when ``map_shards`` adds nothing over a plain loop."""
        return self.kind == "serial" and self.latency_ms == 0

    def _count(self, tasks: int, fallback: bool = False) -> None:
        with self._stats_lock:
            self.stats["batches"] += 1
            self.stats["tasks"] += tasks
            if fallback:
                self.stats["inline_fallbacks"] += 1

    # -- the interface -----------------------------------------------------

    def map_shards(self, fn: Callable[..., Any], args_list: Sequence[tuple]) -> List[Any]:
        """``[fn(*args) for args in args_list]`` — serial, in task order."""
        self._count(len(args_list))
        results = []
        for args in args_list:
            self._hop()
            results.append(fn(*args))
        return results

    def map_stateful(
        self,
        fn: Callable[..., Any],
        states: Sequence[Any],
        args_list: Sequence[tuple],
        key: Optional[str] = None,
        versions: Optional[Sequence[Any]] = None,
        snapshot: Optional[Callable[[int], Tuple[Any, bytes]]] = None,
    ) -> List[Any]:
        """``fn(states[i], *args_list[i])`` per shard; in-process backends
        use the live state objects and ignore the replication hooks."""
        return self.map_shards(fn, [(states[i], *args_list[i]) for i in range(len(states))])

    def report(self) -> Dict[str, Any]:
        with self._stats_lock:
            out = dict(self.stats)
        out.update(kind=self.kind, workers=self.workers, latency_ms=self.latency_ms)
        return out

    @property
    def workers(self) -> int:
        return 1

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"{type(self).__name__}(workers={self.workers}, latency_ms={self.latency_ms})"


class SerialExecutor(ShardExecutor):
    """The reference backend: every shard task inline, in shard order."""


class ThreadShardExecutor(ShardExecutor):
    """Persistent thread pool over in-process shard state.

    Shard objects guard their own internals (``SearchIndex`` holds an
    RLock, the versioned caches lock around get/put), so concurrent tasks
    against *different* shards overlap while same-shard tasks serialize —
    the actor-per-shard model.  Inside a task, nested ``map_shards`` calls
    run inline (see module docstring) so batch endpoints can scatter
    per-request without deadlocking the pool.
    """

    kind = "thread"

    def __init__(self, workers: int = 4, latency_ms: float = 0.0) -> None:
        super().__init__(latency_ms=latency_ms)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._workers = workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    @property
    def workers(self) -> int:
        return self._workers

    def _get_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._workers, thread_name_prefix="shard-exec"
                )
            return self._pool

    def map_shards(self, fn: Callable[..., Any], args_list: Sequence[tuple]) -> List[Any]:
        if _depth() > 0 or len(args_list) <= 1:
            # Nested scatter (or nothing to overlap): run inline.
            self._count(len(args_list), fallback=_depth() > 0)
            results = []
            for args in args_list:
                self._hop()
                results.append(fn(*args))
            return results
        self._count(len(args_list))

        def task(args: tuple) -> Any:
            _entered()
            try:
                self._hop()
                return fn(*args)
            finally:
                _exited()

        futures = [self._get_pool().submit(task, args) for args in args_list]
        return [f.result() for f in futures]

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None


# -- the process backend ----------------------------------------------------


def _worker_main(conn: Any, latency_ms: float) -> None:  # pragma: no cover - child process
    """Worker loop: replicated shard states + one task at a time."""
    replicas: Dict[Any, Tuple[Any, Any]] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        op = msg[0]
        if op == "stop":
            return
        try:
            if latency_ms > 0:
                time.sleep(latency_ms / 1e3)
            if op == "call":
                _op, fn, args = msg
                result = fn(*args)
            elif op == "stateful":
                _op, fn, key, version, blob, args = msg
                if blob is not None:
                    replicas[key] = (version, pickle.loads(blob))
                held = replicas.get(key)
                if held is None:
                    raise RuntimeError(f"no replica installed for shard key {key!r}")
                result = fn(held[1], *args)
            else:
                raise RuntimeError(f"unknown message {op!r}")
            conn.send(("ok", result))
        except BaseException as exc:  # noqa: BLE001 - ship everything to the parent
            try:
                conn.send(("err", f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"))
            except Exception:
                return


class ProcessShardExecutor(ShardExecutor):
    """Process-per-shard-slot workers speaking a pickled pipe protocol.

    Task ``i`` always lands on worker ``i % workers``, so a shard's
    replica lives on a stable worker and the parent can track which
    version each worker holds (``_installed``).  A ``map_stateful`` call
    ships the shard state only when the worker's replica is stale; the
    snapshot callback reads version + pickled state under the owner's
    write lock, so a replica is always labeled with the exact version it
    captures.  Unpicklable work units drop to an internal thread pool
    (counted as ``inline_fallbacks``) rather than failing — the batch
    serving paths close over live platform state on purpose.
    """

    kind = "process"

    def __init__(self, workers: int = 4, latency_ms: float = 0.0) -> None:
        super().__init__(latency_ms=latency_ms)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._workers = workers
        self._procs: List[Any] = []
        self._conns: List[Any] = []
        self._conn_locks: List[threading.Lock] = []
        #: (worker index, replica key) -> version the worker currently holds.
        self._installed: Dict[Tuple[int, Any], Any] = {}
        self._installed_lock = threading.Lock()
        self._start_lock = threading.Lock()
        self._closed = False
        self._fallback = ThreadShardExecutor(workers=workers, latency_ms=latency_ms)

    @property
    def workers(self) -> int:
        return self._workers

    def _ensure_started(self) -> None:
        with self._start_lock:
            if self._procs or self._closed:
                return
            import multiprocessing as mp

            try:
                ctx = mp.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX hosts
                ctx = mp.get_context("spawn")
            for _ in range(self._workers):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main, args=(child_conn, self.latency_ms), daemon=True
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
                self._conn_locks.append(threading.Lock())

    # -- dispatch ----------------------------------------------------------

    def _roundtrip_all(self, messages: List[Tuple[int, Any]]) -> List[Any]:
        """Send every (worker, payload), overlap the workers, collect in order.

        Tasks for the same worker are sent back-to-back under that worker's
        lock (pipe responses are per-connection FIFO); locks are taken in
        worker order so concurrent scatters from different client threads
        pipeline without deadlocking or interleaving replies.  A payload
        may be a callable built under the worker lock — the stateful path
        uses this so replica-version bookkeeping is ordered with the sends.
        Every sent message is recv'd even when a task errors, keeping the
        connections synchronized for the next scatter.
        """
        self._ensure_started()
        by_worker: Dict[int, List[int]] = {}
        for tidx, (widx, _payload) in enumerate(messages):
            by_worker.setdefault(widx, []).append(tidx)
        order = sorted(by_worker)
        results: List[Any] = [None] * len(messages)
        errors: List[Tuple[int, str]] = []
        acquired: List[int] = []
        try:
            for widx in order:
                self._conn_locks[widx].acquire()
                acquired.append(widx)
                for tidx in by_worker[widx]:
                    payload = messages[tidx][1]
                    if callable(payload):
                        payload = payload(widx)
                    self._conns[widx].send(payload)
            for widx in order:
                for tidx in by_worker[widx]:
                    status, value = self._conns[widx].recv()
                    if status != "ok":
                        errors.append((tidx, value))
                    else:
                        results[tidx] = value
        finally:
            for widx in acquired:
                self._conn_locks[widx].release()
        if errors:
            tidx, value = errors[0]
            raise ShardTaskError(value, task_index=tidx)
        return results

    def map_shards(self, fn: Callable[..., Any], args_list: Sequence[tuple]) -> List[Any]:
        if not args_list:
            return []
        if _depth() > 0 or self._closed:
            self._count(len(args_list), fallback=True)
            return self._fallback.map_shards(fn, args_list)
        try:
            payloads = [("call", fn, args) for args in args_list]
            pickle.dumps(payloads[0])
        except Exception:
            # Closures over live platform state: run in-process instead.
            self._count(len(args_list), fallback=True)
            return self._fallback.map_shards(fn, args_list)
        self._count(len(args_list))
        messages = [(i % self._workers, payloads[i]) for i in range(len(payloads))]
        return self._roundtrip_all(messages)

    def map_stateful(
        self,
        fn: Callable[..., Any],
        states: Sequence[Any],
        args_list: Sequence[tuple],
        key: Optional[str] = None,
        versions: Optional[Sequence[Any]] = None,
        snapshot: Optional[Callable[[int], Tuple[Any, bytes]]] = None,
    ) -> List[Any]:
        if key is None or versions is None or snapshot is None or _depth() > 0 or self._closed:
            self._count(len(states), fallback=True)
            return self._fallback.map_stateful(fn, states, args_list)
        self._count(len(states))

        def payload_builder(i: int) -> Callable[[int], tuple]:
            def build(widx: int) -> tuple:
                # Runs under the worker's connection lock, so the replica
                # decision is ordered with the send: a replica is shipped
                # iff this worker's copy is stale, labeled with the exact
                # version the snapshot captured.
                shard_key = (key, i)
                version = versions[i]
                blob = None
                with self._installed_lock:
                    held = self._installed.get((widx, shard_key))
                if held is None or held != version:
                    version, blob = snapshot(i)
                    with self._installed_lock:
                        self._installed[(widx, shard_key)] = version
                return ("stateful", fn, shard_key, version, blob, args_list[i])

            return build

        messages = [(i % self._workers, payload_builder(i)) for i in range(len(states))]
        return self._roundtrip_all(messages)

    def close(self) -> None:
        with self._start_lock:
            self._closed = True
            for conn, lock in zip(self._conns, self._conn_locks):
                with lock:
                    try:
                        conn.send(("stop",))
                    except (OSError, ValueError):
                        pass
            for proc in self._procs:
                proc.join(timeout=2.0)
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()
            for conn in self._conns:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
            self._procs, self._conns, self._conn_locks = [], [], []
            self._installed.clear()
        self._fallback.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


#: Replica-key uniquifier shared by every router instance in the process.
_REPLICA_SEQ = itertools.count()


def next_replica_key(prefix: str) -> str:
    """A process-unique key namespace for one router's shard replicas."""
    return f"{prefix}-{next(_REPLICA_SEQ)}"


def make_executor(
    spec: Any = "serial",
    workers: Optional[int] = None,
    latency_ms: float = 0.0,
) -> ShardExecutor:
    """Build an executor from a config value.

    ``spec`` may be an executor instance (returned as-is), ``None``/
    ``"serial"``, ``"thread"``, or ``"process"``.  ``workers`` defaults
    to 4 for the pooled backends.
    """
    if isinstance(spec, ShardExecutor):
        return spec
    name = "serial" if spec is None else str(spec)
    if name == "serial":
        return SerialExecutor(latency_ms=latency_ms)
    if name == "thread":
        return ThreadShardExecutor(workers=workers or 4, latency_ms=latency_ms)
    if name == "process":
        return ProcessShardExecutor(workers=workers or 4, latency_ms=latency_ms)
    raise ValueError(f"unknown executor {spec!r} (serial | thread | process)")
