"""Versioned read-path caches: serving cost tracks change rate, not history.

The journal's read path used to redo O(history) work per request:
``reconstruct`` replayed snapshot + deltas on every lookup even when the
entity had not changed since the previous request.  This module adds the
memoization layer between the journal and the serving surfaces:

* :class:`VersionedLRU` — a bounded LRU whose entries carry the *version*
  of the data they were computed from.  A lookup presents the current
  version; a stored entry with a stale version counts as an invalidation
  and is discarded, so correctness never depends on eager invalidation
  hooks — writers only have to bump a counter.
* :class:`ReconstructionCache` — memoizes
  ``journal.reconstruct(entity_id, at)`` keyed on the entity's monotonic
  version (``EventJournal.entity_version``, bumped by every append,
  including the eviction path's ``SERVICE_REMOVED`` appends).

Cached payloads are stored *pickled* and deserialized per hit: every
caller receives a fresh object graph, exactly as if ``reconstruct`` had
run — callers may mutate results freely and can never poison the cache.
``pickle`` (not JSON) keeps tuples, floats, and nesting bit-identical,
which is what the perf-regression equality gates assert.
"""

from __future__ import annotations

import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Tuple

__all__ = ["CacheStats", "VersionedLRU", "ReconstructionCache", "MISS"]


#: Sentinel distinguishing "no cached value" from a cached ``None``.
MISS: Any = object()


@dataclass(slots=True)
class CacheStats:
    """Hit/miss accounting surfaced through ``traffic_report()``."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0
    #: Times a cache operation found the lock held by another thread and
    #: had to wait — the shared-read-path contention signal surfaced by
    #: ``cache_report()`` (always 0 under single-threaded serving).
    lock_contention: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
            "lock_contention": self.lock_contention,
        }


class VersionedLRU:
    """Bounded LRU whose entries are valid only at the version they stored.

    ``version`` may be any equality-comparable value — an entity's event
    count, or a tuple of per-shard index generations.  Entries whose
    stored version differs from the presented one are dropped lazily (and
    counted as invalidations); capacity overflow evicts least-recently
    used entries.  ``max_entries=0`` disables the cache entirely (every
    ``get`` is a miss, ``put`` is a no-op) — the cache-off reference
    configuration.

    Thread safety: a single lock serializes ``get``/``put``/``clear`` (the
    parallel shard executors fan concurrent clients into the shared
    read-path caches).  The lock is probed non-blocking first; finding it
    held counts into ``stats.lock_contention``, the contention signal the
    load harness and ``cache_report()`` surface.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Hashable, Tuple[Any, Any]]" = OrderedDict()
        self.stats = CacheStats()
        self._lock = threading.Lock()

    def _acquire(self) -> None:
        """Take the cache lock, counting contention when it is held."""
        if not self._lock.acquire(blocking=False):
            self.stats.lock_contention += 1  # GIL-atomic enough for a counter
            self._lock.acquire()

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, version: Any) -> Any:
        """The value stored for ``key`` at ``version``, or :data:`MISS`."""
        self._acquire()
        try:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return MISS
            stored_version, value = entry
            if stored_version != version:
                del self._entries[key]
                self.stats.invalidations += 1
                self.stats.misses += 1
                return MISS
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value
        finally:
            self._lock.release()

    def put(self, key: Hashable, version: Any, value: Any) -> None:
        if self.max_entries == 0:
            return
        self._acquire()
        try:
            self._entries[key] = (version, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        finally:
            self._lock.release()

    def clear(self) -> None:
        self._acquire()
        try:
            self._entries.clear()
        finally:
            self._lock.release()

    def report(self) -> Dict[str, Any]:
        return {**self.stats.as_dict(), "entries": len(self._entries)}


class ReconstructionCache:
    """Memoized ``reconstruct`` over a (possibly sharded) event journal.

    Keys are ``(entity_id, at)``; validity is the entity's version counter
    at store time.  Any append to the entity — service found/changed,
    eviction, certificate update — bumps the version, so the next read
    recomputes and everything else keeps hitting.  Misses return the
    journal's own freshly-built state (and store a pickled snapshot of it
    taken *before* the caller can touch it); hits return ``pickle.loads``
    of that snapshot — a fresh, mutation-safe copy either way.
    """

    def __init__(self, journal: Any, max_entries: int = 4096) -> None:
        self.journal = journal
        self._lru = VersionedLRU(max_entries)

    @property
    def stats(self) -> CacheStats:
        return self._lru.stats

    def __len__(self) -> int:
        return len(self._lru)

    def reconstruct(self, entity_id: str, at: Optional[float] = None) -> Dict[str, Any]:
        version = self.journal.entity_version(entity_id)
        blob = self._lru.get((entity_id, at), version)
        if blob is not MISS:
            return pickle.loads(blob)
        state = self.journal.reconstruct(entity_id, at=at)
        self._lru.put((entity_id, at), version, pickle.dumps(state, pickle.HIGHEST_PROTOCOL))
        return state

    def clear(self) -> None:
        self._lru.clear()

    def report(self) -> Dict[str, Any]:
        return self._lru.report()
