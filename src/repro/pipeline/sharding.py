"""Keyspace sharding for the journal layer (the Bigtable tablet split).

Production Censys horizontally partitions its Bigtable rows so that
ingestion, reindexing, and serving scale independently of any single
tablet server.  This module is that partitioning for the reproduction:

* :class:`ShardMap` — the deterministic entity-id → shard routing
  function (CRC-32 of the id, stable across processes and runs; Python's
  randomized ``hash()`` is deliberately avoided);
* :class:`ShardedJournal` — N per-shard :class:`EventJournal` instances
  behind the journal's read/write interface, with per-shard write-ahead
  log directories (``shard-00/``, ``shard-01/``, …) when durable.

Merge-order guarantees
----------------------

``entity_ids()`` iterates entities in **global first-append order**
regardless of the shard count: the wrapper records the (entity, shard)
assignment in an insertion-ordered dict at first append.  With
``shards=1`` every call delegates to the single underlying journal, so
behaviour — iteration order, stats objects, storage accounting — is
bit-identical to an unsharded :class:`EventJournal`.  After
:meth:`ShardedJournal.recover` the global order degrades to shard-major
(shard 0's entities first, each shard in its own append order): per-shard
WALs carry no cross-shard ordering, and no caller depends on one.
"""

from __future__ import annotations

import os
import threading
import zlib
from contextlib import ExitStack, contextmanager
from dataclasses import fields as dataclass_fields
from typing import Any, Dict, Iterator, List, Optional

from repro.pipeline.events import Event
from repro.pipeline.journal import EventJournal, JournalStats
from repro.pipeline.state import new_entity_state

__all__ = ["ShardMap", "ShardRecoveryError", "ShardedJournal"]


class ShardRecoveryError(RuntimeError):
    """One shard's WAL replay failed; carries *which* shard and directory.

    The executor backends collapse worker errors into a single re-raise,
    which used to lose the failing shard's identity — operators need to
    know which shard's WAL is torn before deciding what to rebuild.
    """

    def __init__(self, shard: int, directory: str, cause: BaseException) -> None:
        super().__init__(
            f"shard {shard:02d} recovery failed in {directory}: "
            f"{type(cause).__name__}: {cause}"
        )
        self.shard = shard
        self.directory = directory


def _recover_shard(
    shard: int, directory: str, snapshot_every: int, kwargs: Dict[str, Any]
) -> EventJournal:
    """One shard's WAL replay — a picklable unit for parallel recovery."""
    try:
        return EventJournal.recover(directory, snapshot_every=snapshot_every, **kwargs)
    except ShardRecoveryError:
        raise
    except Exception as exc:
        raise ShardRecoveryError(shard, directory, exc) from exc


class ShardMap:
    """Deterministic keyspace partitioning: entity id → shard number."""

    def __init__(self, shards: int = 1) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards

    def shard_of(self, entity_id: str) -> int:
        if self.shards == 1:
            return 0
        return zlib.crc32(entity_id.encode("utf-8")) % self.shards

    def shard_dir(self, directory: str, shard: int) -> str:
        """The per-shard WAL directory under a durable root."""
        return os.path.join(directory, f"shard-{shard:02d}")

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"ShardMap(shards={self.shards})"


def _merge_stats(per_shard: List[JournalStats]) -> JournalStats:
    merged = JournalStats()
    for stats in per_shard:
        for f in dataclass_fields(JournalStats):
            setattr(merged, f.name, getattr(merged, f.name) + getattr(stats, f.name))
    return merged


class ShardedJournal:
    """N per-shard event journals behind the single-journal interface.

    Every method routes by ``shard_map.shard_of(entity_id)``; whole-map
    operations merge across shards in the stable order described in the
    module docstring.  The write side, certificate processor, read side,
    and serving layer all take either journal flavour interchangeably.
    """

    def __init__(
        self,
        shard_map: Optional[ShardMap] = None,
        journals: Optional[List[EventJournal]] = None,
        snapshot_every: int = 32,
    ) -> None:
        self.shard_map = shard_map or ShardMap(1)
        if journals is None:
            journals = [EventJournal(snapshot_every=snapshot_every) for _ in range(self.shard_map.shards)]
        if len(journals) != self.shard_map.shards:
            raise ValueError(
                f"expected {self.shard_map.shards} journals, got {len(journals)}"
            )
        self.journals = journals
        #: Close-once guard (see :meth:`close`).
        self._closed = False
        self._close_lock = threading.Lock()
        #: entity id -> shard, insertion-ordered by first append: the global
        #: iteration order that keeps entity_ids() shard-count invariant.
        self._entity_shard: Dict[str, int] = {}
        for shard, journal in enumerate(self.journals):
            for entity_id in journal.entity_ids():
                self._entity_shard[entity_id] = shard

    # -- construction helpers ---------------------------------------------

    @classmethod
    def durable(
        cls,
        directory: str,
        shard_map: Optional[ShardMap] = None,
        snapshot_every: int = 32,
        *,
        segment_max_records: int = 128,
        fsync_every: int = 1,
        group_commit_events: Optional[int] = None,
        group_commit_bytes: Optional[int] = None,
        fault_injector: Optional[Any] = None,
    ) -> "ShardedJournal":
        """A sharded journal whose shards each own a WAL subdirectory."""
        from repro.pipeline.wal import WriteAheadLog

        shard_map = shard_map or ShardMap(1)
        journals = []
        for shard in range(shard_map.shards):
            wal = WriteAheadLog(
                shard_map.shard_dir(directory, shard),
                segment_max_records=segment_max_records,
                fsync_every=fsync_every,
                group_commit_events=group_commit_events,
                group_commit_bytes=group_commit_bytes,
            )
            journals.append(
                EventJournal(snapshot_every=snapshot_every, wal=wal, fault_injector=fault_injector)
            )
        return cls(shard_map, journals)

    @classmethod
    def recover(
        cls,
        directory: str,
        shard_map: Optional[ShardMap] = None,
        snapshot_every: int = 32,
        executor: Optional[Any] = None,
        **kwargs: Any,
    ) -> "ShardedJournal":
        """Recover every shard from its WAL subdirectory after a crash.

        Each shard recovers independently through
        :meth:`EventJournal.recover`, so the per-shard durable prefix is
        byte-identical to the pre-crash shard; the global entity order is
        rebuilt shard-major (see the module docstring).

        ``executor`` (a :class:`~repro.pipeline.executors.ShardExecutor`)
        replays the per-shard WALs concurrently: the thread backend
        overlaps shard replays in-process; the process backend replays
        each shard in a worker with ``reopen=False`` and no fault
        injector (neither survives pickling), then reopens the WAL and
        reattaches the injector in the parent — so the recovered journal
        is identical to serial recovery regardless of backend.
        """
        shard_map = shard_map or ShardMap(1)
        dirs = [shard_map.shard_dir(directory, shard) for shard in range(shard_map.shards)]
        if executor is None:
            journals = [
                _recover_shard(shard, d, snapshot_every, dict(kwargs))
                for shard, d in enumerate(dirs)
            ]
        elif getattr(executor, "kind", "serial") == "process":
            from repro.pipeline.wal import WriteAheadLog

            child_kwargs = dict(kwargs, reopen=False, fault_injector=None)
            journals = executor.map_shards(
                _recover_shard,
                [(shard, d, snapshot_every, child_kwargs) for shard, d in enumerate(dirs)],
            )
            if kwargs.get("reopen", True):
                for journal, d in zip(journals, dirs):
                    journal.wal = WriteAheadLog(
                        d,
                        segment_max_records=kwargs.get("segment_max_records", 128),
                        fsync_every=kwargs.get("fsync_every", 1),
                        group_commit_events=kwargs.get("group_commit_events"),
                        group_commit_bytes=kwargs.get("group_commit_bytes"),
                        start_after=(
                            journal.cold_store.through_segment
                            if journal.cold_store is not None
                            else -1
                        ),
                    )
            for journal in journals:
                journal.fault_injector = kwargs.get("fault_injector")
        else:
            journals = executor.map_shards(
                _recover_shard,
                [(shard, d, snapshot_every, dict(kwargs)) for shard, d in enumerate(dirs)],
            )
        return cls(shard_map, journals)

    # -- routing -----------------------------------------------------------

    @property
    def shards(self) -> int:
        return self.shard_map.shards

    def shard_of(self, entity_id: str) -> int:
        return self.shard_map.shard_of(entity_id)

    def journal_for(self, entity_id: str) -> EventJournal:
        return self.journals[self.shard_map.shard_of(entity_id)]

    # -- write path --------------------------------------------------------

    def append(self, entity_id: str, time: float, kind: str, payload: Dict[str, Any]) -> Event:
        shard = self.shard_map.shard_of(entity_id)
        event = self.journals[shard].append(entity_id, time, kind, payload)
        if entity_id not in self._entity_shard:
            self._entity_shard[entity_id] = shard
        return event

    def transaction(self):
        """One atomic batch per shard (an observation only touches one)."""
        if len(self.journals) == 1:
            return self.journals[0].transaction()
        return self._transaction_all()

    @contextmanager
    def _transaction_all(self):
        with ExitStack() as stack:
            for journal in self.journals:
                stack.enter_context(journal.transaction())
            yield self

    def flush_commit_windows(self) -> None:
        """Force every shard's open group-commit window durable."""
        for journal in self.journals:
            journal.flush_commit_window()

    def replace_shard(self, shard: int, journal: EventJournal) -> None:
        """Swap one shard's journal (failover promoted a replica into it).

        The global iteration order is pruned, not rebuilt: entities the
        promoted journal never saw (writes the dead primary lost) drop out
        in place, everything else keeps its first-append position — so a
        lossless failover leaves ``entity_ids()`` unchanged.
        """
        if not 0 <= shard < len(self.journals):
            raise IndexError(f"shard {shard} out of range (0..{len(self.journals) - 1})")
        self.journals[shard] = journal
        self._entity_shard = {
            entity_id: owner
            for entity_id, owner in self._entity_shard.items()
            if owner != shard or journal.has_entity(entity_id)
        }
        for entity_id in journal.entity_ids():
            if entity_id not in self._entity_shard:
                self._entity_shard[entity_id] = shard

    def close(self) -> None:
        """Close every shard exactly once.

        Idempotent and safe to call while a parallel executor still holds
        references to the shard journals: the first close wins (per-shard
        closes are themselves close-once), repeat calls return immediately,
        and a concurrent caller blocks until the winning close finishes
        rather than racing the WAL flush.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            for journal in self.journals:
                journal.close()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- read path ---------------------------------------------------------

    def reconstruct(self, entity_id: str, at: Optional[float] = None) -> Dict[str, Any]:
        return self.journal_for(entity_id).reconstruct(entity_id, at=at)

    def peek_current(self, entity_id: str) -> Dict[str, Any]:
        shard = self._entity_shard.get(entity_id)
        if shard is None:
            return new_entity_state(entity_id)
        return self.journals[shard].peek_current(entity_id)

    def events_for(self, entity_id: str, since_seq: int = 0) -> List[Event]:
        return self.journal_for(entity_id).events_for(entity_id, since_seq=since_seq)

    def entity_ids(self) -> Iterator[str]:
        return iter(self._entity_shard.keys())

    def has_entity(self, entity_id: str) -> bool:
        return entity_id in self._entity_shard

    def event_count(self, entity_id: str) -> int:
        return self.journal_for(entity_id).event_count(entity_id)

    def entity_version(self, entity_id: str) -> int:
        """Per-entity version counter (routes to the owning shard)."""
        return self.journal_for(entity_id).entity_version(entity_id)

    def __len__(self) -> int:
        return len(self._entity_shard)

    # -- accounting --------------------------------------------------------

    @property
    def stats(self) -> JournalStats:
        """Aggregate storage accounting (the live object for one shard)."""
        if len(self.journals) == 1:
            return self.journals[0].stats
        return _merge_stats([j.stats for j in self.journals])

    @property
    def version(self) -> int:
        """Whole-map monotonic version (sum of per-shard counters)."""
        return sum(journal.version for journal in self.journals)

    def shard_versions(self) -> List[int]:
        """Per-shard monotonic write counters (append/evict bumps one)."""
        return [journal.version for journal in self.journals]

    def events_per_shard(self) -> List[int]:
        return [journal.stats.events for journal in self.journals]

    def entities_per_shard(self) -> List[int]:
        return [len(journal) for journal in self.journals]

    def storage_report(self) -> Dict[str, Any]:
        """Merged per-tier storage accounting plus per-shard segment counts."""
        per_shard = [journal.storage_report() for journal in self.journals]
        merged: Dict[str, Any] = {
            key: sum(report[key] for report in per_shard) for key in per_shard[0]
        }
        merged["segments_per_shard"] = [report["segments"] for report in per_shard]
        return merged
