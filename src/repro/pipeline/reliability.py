"""Retry-with-backoff and dead-lettering for observation processing.

Transient interrogation failures are retried on an exponential backoff
schedule (simulated hours — nothing sleeps; the accumulated backoff is
accounted so tests can assert on it).  Observations that exhaust their
attempts land in a :class:`DeadLetterQueue` instead of being silently
dropped, and can be re-driven once the underlying fault clears.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, NamedTuple, Tuple

__all__ = ["RetryPolicy", "DeadLetter", "DeadLetterQueue"]


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Exponential backoff: base * multiplier^(attempt-1), capped.

    ``max_attempts`` counts the initial try plus retries; attempt numbers
    passed to :meth:`backoff` are 1-based (the delay *after* that attempt
    failed).
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.multiplier < 1:
            raise ValueError("invalid backoff parameters")

    def backoff(self, attempt: int) -> float:
        """Delay (simulated hours) after the ``attempt``-th failure."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)

    def schedule(self) -> Tuple[float, ...]:
        """The full backoff schedule for a message that always fails."""
        return tuple(self.backoff(a) for a in range(1, self.max_attempts))


class DeadLetter(NamedTuple):
    """One poisoned work item: the payload plus why and how hard we tried."""

    item: Any
    reason: str
    attempts: int


class DeadLetterQueue:
    """Terminal parking lot for work that exhausted its retries."""

    def __init__(self) -> None:
        self._entries: List[DeadLetter] = []
        self.total_pushed = 0

    def push(self, item: Any, reason: str, attempts: int = 0) -> None:
        self._entries.append(DeadLetter(item, reason, attempts))
        self.total_pushed += 1

    def entries(self) -> List[DeadLetter]:
        return list(self._entries)

    def drain(self) -> List[DeadLetter]:
        """Remove and return everything (the redrive primitive)."""
        out, self._entries = self._entries, []
        return out

    def redrive(self, handler) -> int:
        """Re-submit every entry through ``handler(item)``; returns count.

        Entries are drained first, so a handler that dead-letters again
        (fault still present) re-parks them rather than looping forever.
        """
        entries = self.drain()
        for entry in entries:
            handler(entry.item)
        return len(entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)
