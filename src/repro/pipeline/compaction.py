"""Background journal compaction and the columnar cold storage tier.

The journal keeps every event since t=0 resident and replays the whole
history on recovery; that caps both uptime (RAM grows with history) and
restart time (replay is O(history)).  This module folds the *covered*
prefix of each entity's history — everything at or before an anchor
snapshot's ``seq_after`` — out of the hot path:

* sealed WAL segments whose batches are fully covered are rewritten into
  an immutable, columnar **cold run** file (dictionary-encoded kinds and
  payloads, one record per entity) that ``reconstruct(entity, at)`` can
  still time-travel into;
* a single **manifest** records, per entity, the anchor snapshot plus the
  folded prefix's contribution to the storage accounting, so recovery
  seeds each entity from its anchor and replays only the live tail —
  O(anchors + tail) instead of O(history);
* the resident event lists in RAM are truncated at the same boundary, so
  resident memory plateaus while the queryable history keeps growing.

Crash safety is rename-based and ordered::

    write cold run (tmp) -> fsync -> rename -> write manifest (tmp)
        -> fsync -> rename -> delete folded segments + sidecars

A crash before the manifest rename leaves at worst an orphaned cold file
(garbage-collected on the next run); a crash after it leaves at worst
stale segment files below ``through_segment``, which recovery skips and
the next run deletes.  Every step is idempotent, which is what the chaos
suite exercises by killing the compactor at each named crash point.

Compaction changes *where* history lives, never *what* reads return: it
does not bump ``EventJournal.version`` or any per-entity version, so the
versioned read caches stay valid, and reads through the cold tier are
canonical-JSON identical to the uncompacted reference.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.pipeline.events import Event
from repro.pipeline.journal import CompactionAnchor, EventJournal
from repro.pipeline.state import canonical_json
from repro.pipeline.wal import (
    _HEADER_LEN,
    SEGMENT_PATTERN,
    SIDECAR_PATTERN,
    WalCorruptionError,
    decode_batch_events,
    decode_segment,
    encode_record,
)

__all__ = [
    "ColdStore",
    "CompactionStats",
    "SegmentCompactor",
    "ShardedCompactor",
    "compact_journal_in_memory",
    "MANIFEST_NAME",
    "COLD_PATTERN",
]

MANIFEST_NAME = "manifest.json"
COLD_PATTERN = "cold-%05d.cold"

_MANIFEST_STATS_ZERO = {
    "events": 0,
    "event_bytes": 0,
    "snapshots": 0,
    "snapshot_bytes": 0,
    "ssd_bytes": 0,
    "hdd_bytes": 0,
    "cold_bytes": 0,
    "wal_batches": 0,
    "wal_events": 0,
}


def _fsync_dir(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _snapshot_size(state: Dict[str, Any]) -> int:
    # Must match EventJournal._snapshot's size formula exactly.
    return len(json.dumps(state, default=str))


def _decode_one_record(blob: bytes, offset: int, label: str) -> Dict[str, Any]:
    """Decode a single framed record starting at ``offset`` in ``blob``."""
    header = blob[offset : offset + _HEADER_LEN]
    if len(header) < _HEADER_LEN:
        raise WalCorruptionError(f"{label}: truncated cold record header at {offset}")
    length = int(header[:8], 16)
    crc = int(header[8:], 16)
    body = blob[offset + _HEADER_LEN : offset + _HEADER_LEN + length]
    if len(body) < length or (zlib.crc32(body) & 0xFFFFFFFF) != crc:
        raise WalCorruptionError(f"{label}: corrupt cold record at {offset}")
    return json.loads(body.decode("utf-8"))


def _read_record_at(path: str, offset: int) -> Dict[str, Any]:
    """Read one framed record from a cold file without loading the file."""
    with open(path, "rb") as fh:
        fh.seek(offset)
        header = fh.read(_HEADER_LEN)
        if len(header) < _HEADER_LEN:
            raise WalCorruptionError(f"{path}: truncated cold record header at {offset}")
        length = int(header[:8], 16)
        crc = int(header[8:], 16)
        body = fh.read(length)
        if len(body) < length or (zlib.crc32(body) & 0xFFFFFFFF) != crc:
            raise WalCorruptionError(f"{path}: corrupt cold record at {offset}")
        return json.loads(body.decode("utf-8"))


def _encode_run(
    run: int, per_entity: "OrderedDict[str, List[Event]]"
) -> Tuple[bytes, Dict[str, int]]:
    """Columnar-encode one compaction run; returns (framed bytes, offsets).

    Layout: a header record carrying the kind vocabulary and a dictionary
    of repeated canonical payloads, then one record per entity with
    parallel time/kind/payload columns.  Heartbeat payloads (one per
    service key, repeated every re-observation) dictionary-encode to a
    single small integer per event.
    """
    kinds: List[str] = []
    kind_index: Dict[str, int] = {}
    payload_counts: Dict[str, int] = {}
    encoded_payloads: Dict[str, List[str]] = {}
    for entity_id, events in per_entity.items():
        row = []
        for event in events:
            if event.kind not in kind_index:
                kind_index[event.kind] = len(kinds)
                kinds.append(event.kind)
            pj = canonical_json(event.payload)
            payload_counts[pj] = payload_counts.get(pj, 0) + 1
            row.append(pj)
        encoded_payloads[entity_id] = row
    pdict: List[str] = []
    pdict_index: Dict[str, int] = {}
    for entity_id, events in per_entity.items():
        for pj in encoded_payloads[entity_id]:
            if payload_counts[pj] > 1 and pj not in pdict_index:
                pdict_index[pj] = len(pdict)
                pdict.append(pj)
    chunks = [encode_record({"t": "coldhead", "run": run, "kinds": kinds, "pdict": pdict})]
    size = len(chunks[0])
    offsets: Dict[str, int] = {}
    for entity_id, events in per_entity.items():
        record = {
            "t": "cold",
            "e": entity_id,
            "s0": events[0].seq,
            "tm": [event.time for event in events],
            "k": [kind_index[event.kind] for event in events],
            "p": [
                pdict_index[pj] if payload_counts[pj] > 1 else pj
                for pj in encoded_payloads[entity_id]
            ],
        }
        offsets[entity_id] = size
        chunk = encode_record(record)
        chunks.append(chunk)
        size += len(chunk)
    return b"".join(chunks), offsets


def _decode_entity_column(
    header: Dict[str, Any], record: Dict[str, Any]
) -> List[Event]:
    kinds = header["kinds"]
    pdict = header["pdict"]
    entity_id = record["e"]
    s0 = record["s0"]
    events: List[Event] = []
    for i, (tm, k, p) in enumerate(zip(record["tm"], record["k"], record["p"])):
        payload = json.loads(pdict[p] if isinstance(p, int) else p)
        events.append(
            Event(entity_id=entity_id, seq=s0 + i, time=tm, kind=kinds[k], payload=payload)
        )
    return events


def _empty_manifest() -> Dict[str, Any]:
    return {
        "t": "manifest",
        "run": 0,
        "through_segment": -1,
        "batches_folded": 0,
        "runs": [],
        "entities": {},
        "stats": dict(_MANIFEST_STATS_ZERO),
    }


class ColdStore:
    """The columnar cold tier plus the manifest that anchors recovery.

    Disk mode (``directory`` set) backs each compaction run with an
    immutable cold file and persists the manifest; memory mode
    (``directory=None``, used by replicas) keeps runs as encoded blobs in
    RAM — still far denser than live ``Event`` objects — and the manifest
    in memory only, since replicas re-seed from the primary, not from disk.
    """

    def __init__(self, directory: Optional[str], manifest: Optional[Dict[str, Any]] = None):
        self.directory = directory
        self.manifest = manifest if manifest is not None else _empty_manifest()
        self._mem_runs: List[bytes] = []
        self._cache: "OrderedDict[str, List[Event]]" = OrderedDict()
        self._cache_max = 64
        self._lock = threading.Lock()

    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        del state["_lock"]
        state["_cache"] = OrderedDict()
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    @property
    def through_segment(self) -> int:
        return self.manifest["through_segment"]

    @classmethod
    def open(cls, directory: str) -> Optional["ColdStore"]:
        """Load the manifest from a WAL directory; None when uncompacted."""
        path = os.path.join(str(directory), MANIFEST_NAME)
        if not os.path.exists(path):
            return None
        records, _valid, _torn = decode_segment(path, tolerate_torn_tail=False)
        if len(records) != 1 or records[0].get("t") != "manifest":
            raise WalCorruptionError(f"{path}: malformed compaction manifest")
        return cls(str(directory), records[0])

    def anchors(self) -> Dict[str, Tuple[int, float, Dict[str, Any]]]:
        return {
            entity_id: (ent["base"], ent["time"], ent["state"])
            for entity_id, ent in self.manifest["entities"].items()
        }

    # -- reads -------------------------------------------------------------

    def events_for(self, entity_id: str) -> List[Event]:
        """The entity's full folded prefix (seqs [0, base)), oldest first."""
        with self._lock:
            cached = self._cache.get(entity_id)
            if cached is not None:
                self._cache.move_to_end(entity_id)
                return cached
        events: List[Event] = []
        for index, run in enumerate(self.manifest["runs"]):
            offset = run["offsets"].get(entity_id)
            if offset is None:
                continue
            header, record = self._read_run_records(index, run, offset)
            chunk = _decode_entity_column(header, record)
            if chunk and chunk[0].seq != len(events):
                raise WalCorruptionError(
                    f"cold run {index}: non-contiguous history for {entity_id}: "
                    f"expected seq {len(events)}, found {chunk[0].seq}"
                )
            events.extend(chunk)
        with self._lock:
            self._cache[entity_id] = events
            self._cache.move_to_end(entity_id)
            while len(self._cache) > self._cache_max:
                self._cache.popitem(last=False)
        return events

    def _read_run_records(
        self, index: int, run: Dict[str, Any], offset: int
    ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        if run["file"] is None:
            blob = self._mem_runs[run["mem"]]
            label = f"mem-run-{index}"
            return _decode_one_record(blob, 0, label), _decode_one_record(blob, offset, label)
        path = os.path.join(self.directory, run["file"])
        return _read_record_at(path, 0), _read_record_at(path, offset)

    # -- writes (compactor only) -------------------------------------------

    def write_run(
        self,
        per_entity: "OrderedDict[str, List[Event]]",
        *,
        crash_hook: Optional[Callable[[str], None]] = None,
    ) -> Tuple[Dict[str, Any], int]:
        """Persist one run; returns (manifest run entry, file bytes).

        Disk mode follows write-tmp -> fsync -> rename; the named crash
        hooks bracket the rename so the chaos suite can kill between
        "new data durable" and "new data visible".
        """
        run_id = self.manifest["run"]
        blob, offsets = _encode_run(run_id, per_entity)
        if self.directory is None:
            self._mem_runs.append(blob)
            entry = {"file": None, "mem": len(self._mem_runs) - 1, "offsets": offsets}
            return entry, len(blob)
        name = COLD_PATTERN % run_id
        final_path = os.path.join(self.directory, name)
        tmp_path = final_path + ".tmp"
        with open(tmp_path, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        if crash_hook is not None:
            crash_hook("cold_written")
        os.replace(tmp_path, final_path)
        _fsync_dir(self.directory)
        if crash_hook is not None:
            crash_hook("cold_renamed")
        return {"file": name, "offsets": offsets}, len(blob)

    def commit_manifest(
        self,
        manifest: Dict[str, Any],
        *,
        crash_hook: Optional[Callable[[str], None]] = None,
    ) -> None:
        """Atomically swap in a new manifest (and drop stale read cache)."""
        if self.directory is not None:
            final_path = os.path.join(self.directory, MANIFEST_NAME)
            tmp_path = final_path + ".tmp"
            with open(tmp_path, "wb") as fh:
                fh.write(encode_record(manifest))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_path, final_path)
            _fsync_dir(self.directory)
        self.manifest = manifest
        with self._lock:
            self._cache.clear()
        if crash_hook is not None:
            crash_hook("manifest_written")


@dataclass(slots=True)
class CompactionStats:
    """Counters for one compactor (merged additively across shards)."""

    runs: int = 0
    segments_compacted: int = 0
    batches_folded: int = 0
    events_folded: int = 0
    event_bytes_folded: int = 0
    synthetic_anchors: int = 0
    cold_files: int = 0
    cold_file_bytes: int = 0
    #: Runs cut short (or skipped) because sealed batches were not yet
    #: committed on enough replicas.
    watermark_deferrals: int = 0
    #: Stale files removed during crash-recovery cleanup.
    leftovers_removed: int = 0


class SegmentCompactor:
    """Folds covered history from one journal's sealed WAL segments.

    ``batch_limit`` (when set) returns the number of WAL batches known
    committed on enough replicas; compaction never folds a batch beyond
    it, so a failover can always re-ship un-acked tail batches from the
    segment files.  ``crash_hook`` is called with a named crash point at
    each step boundary (chaos testing).
    """

    def __init__(
        self,
        journal: EventJournal,
        directory: str,
        *,
        min_sealed_segments: int = 2,
        max_segments_per_run: int = 64,
        batch_limit: Optional[Callable[[], Optional[int]]] = None,
        crash_hook: Optional[Callable[[str], None]] = None,
    ) -> None:
        if min_sealed_segments < 1:
            raise ValueError("min_sealed_segments must be >= 1")
        self.journal = journal
        self.directory = str(directory)
        self.min_sealed_segments = min_sealed_segments
        self.max_segments_per_run = max_segments_per_run
        self.batch_limit = batch_limit
        self.crash_hook = crash_hook
        self.stats = CompactionStats()
        if journal.cold_store is None:
            journal.cold_store = ColdStore(self.directory)
        self.store: ColdStore = journal.cold_store

    # -- crash-recovery cleanup -------------------------------------------

    def cleanup(self) -> int:
        """Remove leftovers from a crashed run (idempotent).

        Orphaned ``*.tmp`` files and cold files above the manifest's last
        committed run never became visible; segment/sidecar files at or
        below ``through_segment`` are already folded into the manifest and
        recovery skips them — delete both kinds.
        """
        removed = 0
        through = self.store.through_segment
        referenced = {run["file"] for run in self.store.manifest["runs"] if run["file"]}
        for name in sorted(os.listdir(self.directory)):
            path = os.path.join(self.directory, name)
            if name.endswith(".tmp"):
                os.unlink(path)
                removed += 1
            elif name.startswith("cold-") and name.endswith(".cold") and name not in referenced:
                os.unlink(path)
                removed += 1
            elif name.startswith("segment-") and (name.endswith(".log") or name.endswith(".snap")):
                index = int(name[len("segment-") : name.rindex(".")])
                if index <= through:
                    os.unlink(path)
                    removed += 1
        if removed:
            _fsync_dir(self.directory)
        self.stats.leftovers_removed += removed
        return removed

    # -- one compaction run ------------------------------------------------

    def run_once(self) -> Dict[str, Any]:
        """Attempt one fold; returns a small report dict.

        No-ops (with a reason) when there are not enough sealed segments
        or the replication watermark does not yet cover them.
        """
        self.cleanup()
        wal = self.journal.wal
        if wal is None:
            return {"folded": False, "reason": "no-wal"}
        through = self.store.through_segment
        candidates = [i for i in wal.sealed_segments() if i > through]
        if len(candidates) < self.min_sealed_segments:
            return {"folded": False, "reason": "not-enough-sealed"}
        candidates = candidates[: self.max_segments_per_run]

        limit: Optional[int] = None
        if self.batch_limit is not None:
            limit = self.batch_limit()
        batches_before = self.store.manifest["batches_folded"]
        segments: List[int] = []
        batch_count = 0
        per_entity: "OrderedDict[str, List[Event]]" = OrderedDict()
        deferred = False
        for index in candidates:
            path = os.path.join(self.directory, SEGMENT_PATTERN % index)
            records, _valid, _torn = decode_segment(path, tolerate_torn_tail=False)
            if limit is not None and batches_before + batch_count + len(records) > limit:
                deferred = True
                break
            for record in records:
                if record.get("t") != "batch":
                    raise WalCorruptionError(f"{path}: unexpected record type in sealed segment")
                for raw in decode_batch_events(record["events"]):
                    event = Event(
                        entity_id=raw["e"],
                        seq=raw["s"],
                        time=raw["tm"],
                        kind=raw["k"],
                        payload=raw["p"],
                    )
                    per_entity.setdefault(event.entity_id, []).append(event)
            batch_count += len(records)
            segments.append(index)
        if deferred:
            self.stats.watermark_deferrals += 1
        if len(segments) < self.min_sealed_segments:
            return {
                "folded": False,
                "reason": "watermark" if deferred else "not-enough-sealed",
            }

        anchors, new_cadence, synthetic = self._plan_anchors(per_entity)
        entry, blob_bytes = self.store.write_run(per_entity, crash_hook=self.crash_hook)
        manifest = self._build_manifest(
            anchors, per_entity, new_cadence, segments, batch_count, entry
        )
        self.store.commit_manifest(manifest, crash_hook=self.crash_hook)
        self._delete_segments(segments)
        self.journal.truncate_compacted(anchors)

        events_folded = sum(len(events) for events in per_entity.values())
        self.stats.runs += 1
        self.stats.segments_compacted += len(segments)
        self.stats.batches_folded += batch_count
        self.stats.events_folded += events_folded
        self.stats.event_bytes_folded += sum(
            event.encoded_size() for events in per_entity.values() for event in events
        )
        self.stats.synthetic_anchors += synthetic
        self.stats.cold_files += 1
        self.stats.cold_file_bytes += blob_bytes
        return {
            "folded": True,
            "segments": list(segments),
            "batches": batch_count,
            "events": events_folded,
            "entities": len(per_entity),
            "cold_file_bytes": blob_bytes,
        }

    def _plan_anchors(
        self, per_entity: "OrderedDict[str, List[Event]]"
    ) -> Tuple[Dict[str, CompactionAnchor], Dict[str, List[Tuple[int, float, Dict[str, Any]]]], int]:
        """Pick each entity's fold boundary and materialize its anchor.

        The boundary is exactly one past the last folded event, so the
        live tail (already durable in un-folded segments) never overlaps
        the cold tier.  When no cadence snapshot landed on that boundary,
        a synthetic anchor is computed by deterministic replay.
        """
        anchors: Dict[str, CompactionAnchor] = {}
        new_cadence: Dict[str, List[Tuple[int, float, Dict[str, Any]]]] = {}
        synthetic_count = 0
        for entity_id, events in per_entity.items():
            log = self.journal._logs.get(entity_id)
            if log is None or events[0].seq != log.base_seq:
                raise WalCorruptionError(
                    f"{self.directory}: sealed segments diverge from resident journal "
                    f"for {entity_id}"
                )
            base = events[-1].seq + 1
            if len(events) != base - log.base_seq:
                raise WalCorruptionError(
                    f"{self.directory}: sequence gap in sealed segments for {entity_id}"
                )
            cadence = next((s for s in log.snapshots if s[0] == base), None)
            if cadence is not None:
                anchors[entity_id] = CompactionAnchor(base, cadence[1], cadence[2], False)
            else:
                state = self.journal.anchor_state(entity_id, base)
                anchors[entity_id] = CompactionAnchor(base, events[-1].time, state, True)
                synthetic_count += 1
            # Cadence snapshots newly covered by this fold (strictly past the
            # previous anchor, at or below the new one): their accounting
            # moves into the manifest because recovery will no longer
            # regenerate them.
            new_cadence[entity_id] = [
                s for s in log.snapshots if log.base_seq < s[0] <= base
            ]
        return anchors, new_cadence, synthetic_count

    def _build_manifest(
        self,
        anchors: Dict[str, CompactionAnchor],
        per_entity: "OrderedDict[str, List[Event]]",
        new_cadence: Dict[str, List[Tuple[int, float, Dict[str, Any]]]],
        segments: List[int],
        batch_count: int,
        run_entry: Dict[str, Any],
    ) -> Dict[str, Any]:
        old = self.store.manifest
        entities: Dict[str, Any] = {
            entity_id: dict(ent) for entity_id, ent in old["entities"].items()
        }
        for entity_id, anchor in anchors.items():
            entities[entity_id] = {
                "base": anchor.base,
                "time": anchor.time,
                "state": anchor.state,
                "state_bytes": _snapshot_size(anchor.state),
            }
        stats = dict(old["stats"])
        folded_events = 0
        folded_bytes = 0
        for events in per_entity.values():
            folded_events += len(events)
            folded_bytes += sum(event.encoded_size() for event in events)
        covered_snaps = 0
        covered_snap_bytes = 0
        for entity_id, snaps in new_cadence.items():
            covered_snaps += len(snaps)
            covered_snap_bytes += sum(_snapshot_size(s[2]) for s in snaps)
            if anchors[entity_id].synthetic:
                covered_snaps += 1
                covered_snap_bytes += entities[entity_id]["state_bytes"]
        stats["events"] += folded_events
        stats["event_bytes"] += folded_bytes
        stats["snapshots"] += covered_snaps
        stats["snapshot_bytes"] += covered_snap_bytes
        stats["wal_events"] += folded_events
        stats["wal_batches"] += batch_count
        # Tier model for the fully-folded prefix: every anchor snapshot is
        # hot, everything else (folded events, superseded snapshots) is cold.
        stats["ssd_bytes"] = sum(ent["state_bytes"] for ent in entities.values())
        stats["hdd_bytes"] = 0
        stats["cold_bytes"] = stats["event_bytes"] + stats["snapshot_bytes"] - stats["ssd_bytes"]
        return {
            "t": "manifest",
            "run": old["run"] + 1,
            "through_segment": segments[-1],
            "batches_folded": old["batches_folded"] + batch_count,
            "runs": old["runs"] + [run_entry],
            "entities": entities,
            "stats": stats,
        }

    def _delete_segments(self, segments: List[int]) -> None:
        first = True
        for index in segments:
            path = os.path.join(self.directory, SEGMENT_PATTERN % index)
            if os.path.exists(path):
                os.unlink(path)
            if first and self.crash_hook is not None:
                self.crash_hook("mid_delete")
            first = False
            sidecar = os.path.join(self.directory, SIDECAR_PATTERN % index)
            if os.path.exists(sidecar):
                os.unlink(sidecar)
        _fsync_dir(self.directory)


def compact_journal_in_memory(
    journal: EventJournal, *, min_fold_events: int = 1
) -> int:
    """Fold a WAL-less journal's covered prefix into a memory cold store.

    Replicas compact independently of the primary: every event a replica
    holds came from a committed (fsynced-on-primary) batch, so the fold
    boundary is simply each entity's newest cadence snapshot.  Folded
    events move from live ``Event`` objects into encoded columnar blobs;
    reads stitch them back exactly like the disk cold tier.  Returns the
    number of events folded.
    """
    anchors: Dict[str, CompactionAnchor] = {}
    per_entity: "OrderedDict[str, List[Event]]" = OrderedDict()
    for entity_id, log in journal._logs.items():
        if not log.snapshots:
            continue
        base, time, state = log.snapshots[-1]
        if base <= log.base_seq:
            continue
        folded = log.events[: base - log.base_seq]
        if len(folded) < min_fold_events:
            continue
        anchors[entity_id] = CompactionAnchor(base, time, state, False)
        per_entity[entity_id] = list(folded)
    if not anchors:
        return 0
    if journal.cold_store is None:
        journal.cold_store = ColdStore(None)
    store: ColdStore = journal.cold_store
    entry, _blob_bytes = store.write_run(per_entity)
    manifest = dict(store.manifest)
    manifest["run"] = manifest["run"] + 1
    manifest["runs"] = manifest["runs"] + [entry]
    entities = {eid: dict(ent) for eid, ent in manifest["entities"].items()}
    for entity_id, anchor in anchors.items():
        entities[entity_id] = {
            "base": anchor.base,
            "time": anchor.time,
            "state": anchor.state,
            "state_bytes": _snapshot_size(anchor.state),
        }
    manifest["entities"] = entities
    store.commit_manifest(manifest)
    journal.truncate_compacted(anchors)
    return sum(len(events) for events in per_entity.values())


class ShardedCompactor:
    """One compactor per shard, driven from platform housekeeping.

    ``batch_limit_for(shard)`` supplies the per-shard replication
    watermark callable (None when the shard is unreplicated).  After a
    failover promotes a replica into a fresh WAL directory, ``rebind``
    re-attaches that shard's compactor to the new journal and directory.
    """

    def __init__(
        self,
        journals: List[EventJournal],
        directories: List[str],
        *,
        min_sealed_segments: int = 2,
        max_segments_per_run: int = 64,
        batch_limit_for: Optional[Callable[[int], Optional[Callable[[], Optional[int]]]]] = None,
        crash_hook: Optional[Callable[[str], None]] = None,
    ) -> None:
        if len(journals) != len(directories):
            raise ValueError("journals and directories must align")
        self.min_sealed_segments = min_sealed_segments
        self.max_segments_per_run = max_segments_per_run
        self.batch_limit_for = batch_limit_for
        self.crash_hook = crash_hook
        self.compactors: List[SegmentCompactor] = [
            self._make(shard, journal, directory)
            for shard, (journal, directory) in enumerate(zip(journals, directories))
        ]

    def _make(self, shard: int, journal: EventJournal, directory: str) -> SegmentCompactor:
        batch_limit = self.batch_limit_for(shard) if self.batch_limit_for is not None else None
        return SegmentCompactor(
            journal,
            directory,
            min_sealed_segments=self.min_sealed_segments,
            max_segments_per_run=self.max_segments_per_run,
            batch_limit=batch_limit,
            crash_hook=self.crash_hook,
        )

    def rebind(self, shard: int, journal: EventJournal, directory: str) -> None:
        """Point one shard's compactor at a promoted journal/WAL dir."""
        self.compactors[shard] = self._make(shard, journal, directory)

    def run_once(self) -> List[Dict[str, Any]]:
        return [compactor.run_once() for compactor in self.compactors]

    def stats_report(self) -> Dict[str, int]:
        merged: Dict[str, int] = {name: 0 for name in CompactionStats.__dataclass_fields__}
        for compactor in self.compactors:
            for name in merged:
                merged[name] += getattr(compactor.stats, name)
        return merged
