"""Journal events: the write-side's unit of state change.

Events are delta encoded — a ``service_changed`` event carries only the
fields that differ from the previous scan, because "most services change
very little across refresh scans".  A ``service_refreshed`` event (observed,
nothing changed) carries an empty delta and costs almost nothing to store.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

__all__ = ["EventKind", "Event", "service_key"]


class EventKind:
    """Event vocabulary for host / web-property / certificate entities."""

    SERVICE_FOUND = "service_found"
    SERVICE_CHANGED = "service_changed"
    SERVICE_REFRESHED = "service_refreshed"
    SERVICE_PENDING_REMOVAL = "service_pending_removal"
    SERVICE_UNPENDED = "service_unpended"
    SERVICE_REMOVED = "service_removed"
    HOST_META = "host_meta"
    ENTITY_OBSERVED = "entity_observed"
    CERT_OBSERVED = "cert_observed"
    CERT_VALIDATED = "cert_validated"
    CERT_REVOKED = "cert_revoked"
    #: Standing-query lifecycle (journaled on ``sub:<id>`` entities so
    #: registrations replay through WAL recovery and compaction).
    SUBSCRIPTION_REGISTERED = "subscription_registered"
    SUBSCRIPTION_CANCELLED = "subscription_cancelled"

    ALL = (
        SERVICE_FOUND,
        SERVICE_CHANGED,
        SERVICE_REFRESHED,
        SERVICE_PENDING_REMOVAL,
        SERVICE_UNPENDED,
        SERVICE_REMOVED,
        HOST_META,
        ENTITY_OBSERVED,
        CERT_OBSERVED,
        CERT_VALIDATED,
        CERT_REVOKED,
        SUBSCRIPTION_REGISTERED,
        SUBSCRIPTION_CANCELLED,
    )


def service_key(port: int, transport: str) -> str:
    """The journal key of one service slot on a host."""
    return f"{port}/{transport}"


@dataclass(frozen=True, slots=True)
class Event:
    """One journaled state change for one entity.

    ``seq`` is the per-entity monotonic sequence number (the Bigtable row
    key is (entity_id, seq)); ``time`` is simulation hours.
    """

    entity_id: str
    seq: int
    time: float
    kind: str
    payload: Mapping[str, Any] = field(default_factory=dict)

    def encoded_size(self) -> int:
        """Approximate on-disk size in bytes (storage accounting)."""
        return len(self.entity_id) + 12 + len(json.dumps(self.payload, default=str, sort_keys=True))
