"""The CQRS write (command) side: turning scan results into journal events.

For each inbound scan the processor (1) retrieves the entity's current
state, (2) computes the delta command, (3) journals the resulting event,
and (4) enqueues follow-up work on the bus — the paper's four write-side
steps.  It also implements two Censys data-quality policies:

* *eviction staging*: a failed scan of a known service marks it pending
  removal; actual removal is a separate command issued by the scheduler
  after the 72-hour window;
* *pseudo-service filtering*: hosts answering identically on many ports are
  flagged and excluded from serving (competitor engines skip this, which
  is one source of their inflated self-reported counts).

Fault tolerance (opt-in): with a :class:`~repro.pipeline.faults.FaultInjector`
attached, :meth:`WriteSideProcessor.submit` retries transient interrogation
timeouts on the processor's exponential-backoff
:class:`~repro.pipeline.reliability.RetryPolicy` and dead-letters
observations that exhaust their attempts.  Observations older than the
entity's journal head (redelivered after a crash, or reordered in transit)
are dropped as *stale* — last-writer-wins — instead of corrupting the
journal's time order.  Each observation's events commit as one atomic WAL
batch when the journal is durable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from dataclasses import fields as dataclass_fields
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.pipeline.events import EventKind, service_key
from repro.pipeline.faults import FaultInjector, TransientScanError
from repro.pipeline.journal import EventJournal
from repro.pipeline.queues import EventBus
from repro.pipeline.reliability import DeadLetterQueue, RetryPolicy
from repro.protocols.interrogate import InterrogationResult

__all__ = ["ScanObservation", "WriteStats", "WriteSideProcessor", "host_entity_id"]


def host_entity_id(ip_text: str) -> str:
    return f"host:{ip_text}"


@dataclass(slots=True)
class ScanObservation:
    """One completed interrogation (successful or failed) of one binding."""

    entity_id: str
    time: float
    port: int
    transport: str
    result: InterrogationResult
    source: str = "scan"   # "discovery" | "refresh" | "predictive" | "name"
    #: Monotonic delivery sequence number (set by the ingest layer when the
    #: pipeline runs over an at-least-once channel; None for direct calls).
    obs_seq: Optional[int] = None


@dataclass(slots=True)
class WriteStats:
    observations: int = 0
    found: int = 0
    changed: int = 0
    refreshed: int = 0
    pending: int = 0
    removed: int = 0
    pseudo_flagged: int = 0
    #: Fault-tolerance accounting.
    retries: int = 0
    backoff_hours: float = 0.0
    dead_lettered: int = 0
    stale_dropped: int = 0


class WriteSideProcessor:
    """Applies scan observations to the journal and emits follow-up work."""

    #: A host answering identically on more than this many ports is pseudo.
    PSEUDO_PORT_THRESHOLD = 20

    def __init__(
        self,
        journal: EventJournal,
        bus: Optional[EventBus] = None,
        filter_pseudo_services: bool = True,
        delta_encoding: bool = True,
        faults: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
        dlq: Optional[DeadLetterQueue] = None,
    ) -> None:
        self.journal = journal
        self.bus = bus or EventBus()
        self.filter_pseudo_services = filter_pseudo_services
        #: False journals the full record on every rescan instead of the
        #: field-level diff — the storage-cost ablation's strawman.
        self.delta_encoding = delta_encoding
        self.faults = faults
        self.retry = retry or RetryPolicy()
        self.dlq = dlq if dlq is not None else DeadLetterQueue()
        self.stats = WriteStats()

    # ------------------------------------------------------------------

    def submit(self, obs: ScanObservation) -> Optional[str]:
        """Process with retries: the at-least-once ingestion entry point.

        Transient interrogation timeouts back off exponentially; once
        ``retry.max_attempts`` is exhausted the observation is dead-lettered
        and ``None`` is returned.  A :class:`SimulatedCrash` always
        propagates — the driver owns recovery.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                return self.process(obs)
            except TransientScanError:
                if attempt >= self.retry.max_attempts:
                    self.dlq.push(obs, "transient timeouts exhausted", attempts=attempt)
                    self.stats.dead_lettered += 1
                    return None
                self.stats.retries += 1
                self.stats.backoff_hours += self.retry.backoff(attempt)

    def submit_many(
        self,
        observations: Sequence[ScanObservation],
        executor: Optional[Any] = None,
    ) -> List[Optional[str]]:
        """Batched ingest: bit-identical to ``submit`` per observation.

        Consecutive same-entity observations commit as one WAL batch (one
        transaction per *run*), amortizing the per-event append/fsync cost
        while producing the exact same events, stats, bus publishes, and
        dead letters as the one-at-a-time reference.  With a non-inline
        executor and a sharded journal the observations are grouped by
        owning shard and whole groups ingest in parallel (each shard's
        subsequence keeps its input order); bus publishes and new-entity
        registration are then replayed serially in input order, so the
        observable outcome is independent of the backend.  The parallel
        path is skipped when a fault injector is attached — retry/crash
        schedules are keyed to global observation order.

        Any open group-commit windows are flushed before returning:
        an acked batch is a durable batch.
        """
        observations = list(observations)
        if not observations:
            return []
        journal = self.journal
        shard_of = getattr(journal, "shard_of", None)
        if (
            executor is not None
            and not executor.inline
            and self.faults is None
            and shard_of is not None
        ):
            groups: Dict[int, List[int]] = {}
            for pos, obs in enumerate(observations):
                groups.setdefault(shard_of(obs.entity_id), []).append(pos)
            if len(groups) > 1:
                results = self._submit_many_parallel(observations, groups, executor)
                self._flush_commit_windows()
                return results
        results = self._submit_many_serial(observations)
        self._flush_commit_windows()
        return results

    def _flush_commit_windows(self) -> None:
        flush = getattr(
            self.journal, "flush_commit_windows",
            getattr(self.journal, "flush_commit_window", None),
        )
        if flush is not None:
            flush()

    def _run_transaction(self, entity_id: str):
        """A transaction on just the entity's owning journal (one shard)."""
        journal_for = getattr(self.journal, "journal_for", None)
        journal = self.journal if journal_for is None else journal_for(entity_id)
        return journal.transaction()

    def _submit_many_serial(
        self, observations: List[ScanObservation]
    ) -> List[Optional[str]]:
        if self.faults is not None:
            # Crash points and retry schedules are keyed to per-observation
            # commit ranges; keep the reference one-txn-per-observation shape
            # so chaos scenarios mean the same thing batched or not.
            return [self.submit(obs) for obs in observations]
        results: List[Optional[str]] = [None] * len(observations)
        i, n = 0, len(observations)
        while i < n:
            entity = observations[i].entity_id
            j = i + 1
            while j < n and observations[j].entity_id == entity:
                j += 1
            with self._run_transaction(entity):
                for pos in range(i, j):
                    results[pos] = self.submit(observations[pos])
            i = j
        return results

    def _submit_many_parallel(
        self,
        observations: List[ScanObservation],
        groups: Dict[int, List[int]],
        executor: Any,
    ) -> List[Optional[str]]:
        """Whole shard groups ingest concurrently, then merge serially.

        Each group runs on a private processor clone bound to the owning
        shard's journal, with a recording bus and fresh stats/DLQ — the
        shard journals are disjoint, so clones share nothing.  Phase two
        (serial) replays bus publishes and first-append registrations in
        input-position order and folds the clone stats back in, making the
        merge order — the only cross-shard state — deterministic.
        """
        journal = self.journal
        results: List[Optional[str]] = [None] * len(observations)

        def _ingest_group(shard: int, positions: List[int]):
            shard_journal = journal.journals[shard]
            bus = _RecordingBus()
            clone = WriteSideProcessor(
                shard_journal,
                bus,
                filter_pseudo_services=self.filter_pseudo_services,
                delta_encoding=self.delta_encoding,
                faults=None,
                retry=self.retry,
                dlq=DeadLetterQueue(),
            )
            out: List[Tuple[int, Optional[str]]] = []
            first_appends: List[Tuple[int, str]] = []
            i, n = 0, len(positions)
            while i < n:
                entity = observations[positions[i]].entity_id
                j = i + 1
                while j < n and observations[positions[j]].entity_id == entity:
                    j += 1
                with shard_journal.transaction():
                    for pos in positions[i:j]:
                        bus.position = pos
                        known = shard_journal.has_entity(entity)
                        out.append((pos, clone.submit(observations[pos])))
                        if not known and shard_journal.has_entity(entity):
                            first_appends.append((pos, entity))
                i = j
            return out, bus.published, clone.stats, clone.dlq.entries(), first_appends

        merged = executor.map_shards(
            _ingest_group, [(shard, positions) for shard, positions in groups.items()]
        )
        published: List[Tuple[int, str, Dict[str, Any]]] = []
        first_appends: List[Tuple[int, str]] = []
        for out, group_published, stats, dead_letters, group_first in merged:
            for pos, result in out:
                results[pos] = result
            published.extend(group_published)
            first_appends.extend(group_first)
            for f in dataclass_fields(WriteStats):
                setattr(
                    self.stats, f.name,
                    getattr(self.stats, f.name) + getattr(stats, f.name),
                )
            for letter in dead_letters:
                self.dlq.push(letter.item, letter.reason, attempts=letter.attempts)
        for _pos, entity in sorted(first_appends):
            if entity not in journal._entity_shard:
                journal._entity_shard[entity] = journal.shard_of(entity)
        published.sort(key=lambda record: record[0])
        for _pos, topic, message in published:
            self.bus.publish(topic, message)
        return results

    def process(self, obs: ScanObservation) -> Optional[str]:
        """Apply one observation; returns the journal event kind (or None)."""
        if self.faults is not None:
            self.faults.maybe_timeout(obs.obs_seq)  # raises TransientScanError
        self.stats.observations += 1
        state = self.journal.peek_current(obs.entity_id)
        last_time = state.get("last_event_time")
        if last_time is not None and obs.time < last_time:
            # Redelivered or reordered observation older than the journal
            # head: everything it could say has been superseded.
            self.stats.stale_dropped += 1
            return None
        if self.filter_pseudo_services and state["meta"].get("pseudo_host"):
            return None  # filtered: pseudo hosts are not part of the map
        key = service_key(obs.port, obs.transport)
        existing = state["services"].get(key)
        with self.journal.transaction():
            if obs.result.success and obs.result.service_name:
                return self._apply_success(obs, key, existing)
            return self._apply_failure(obs, key, existing)

    def _journal(
        self, obs: ScanObservation, kind: str, payload: Dict[str, Any]
    ) -> None:
        """Append one event, stamping the delivery sequence when present."""
        if obs.obs_seq is not None:
            payload = dict(payload)
            payload["obs_seq"] = obs.obs_seq
        self.journal.append(obs.entity_id, obs.time, kind, payload)

    def _apply_success(
        self, obs: ScanObservation, key: str, existing: Optional[Dict[str, Any]]
    ) -> str:
        record = dict(obs.result.record)
        service_name = obs.result.service_name
        if existing is None:
            self._journal(
                obs,
                EventKind.SERVICE_FOUND,
                {
                    "key": key,
                    "protocol": obs.result.protocol,
                    "service_name": service_name,
                    "record": record,
                    "source": obs.source,
                },
            )
            self.stats.found += 1
            self.bus.publish(
                "service_found",
                {"entity_id": obs.entity_id, "key": key, "record": record, "time": obs.time,
                 "service_name": service_name, "source": obs.source},
            )
            if self.filter_pseudo_services:
                self._check_pseudo(obs, record)
            return EventKind.SERVICE_FOUND

        # Change detection against the previous scan of this binding.
        changed, removed_fields = _diff_records(existing["record"], record)
        name_changed = existing.get("service_name") != service_name
        if not changed and not removed_fields and not name_changed:
            refresh_payload: Dict[str, Any] = {"key": key}
            if not self.delta_encoding:
                refresh_payload["record"] = record  # full-record strawman
            self._journal(obs, EventKind.SERVICE_REFRESHED, refresh_payload)
            self.stats.refreshed += 1
            return EventKind.SERVICE_REFRESHED
        if not self.delta_encoding:
            changed = record  # store everything, not the diff
        payload: Dict[str, Any] = {"key": key, "changed": changed, "removed_fields": removed_fields}
        if name_changed:
            payload["service_name"] = service_name
            payload["protocol"] = obs.result.protocol
        self._journal(obs, EventKind.SERVICE_CHANGED, payload)
        self.stats.changed += 1
        self.bus.publish(
            "service_changed",
            {"entity_id": obs.entity_id, "key": key, "changed": changed, "time": obs.time,
             "record": record, "service_name": service_name},
        )
        return EventKind.SERVICE_CHANGED

    def _apply_failure(
        self, obs: ScanObservation, key: str, existing: Optional[Dict[str, Any]]
    ) -> Optional[str]:
        if existing is None:
            return None  # nothing known to stage for removal
        first_failure = existing.get("pending_removal_since") is None
        # Repeated failures are journaled too: they record the scan attempt
        # (last_checked) while the original staging time keeps the eviction
        # clock running.
        self._journal(obs, EventKind.SERVICE_PENDING_REMOVAL, {"key": key})
        if first_failure:
            self.stats.pending += 1
            self.bus.publish(
                "service_unresponsive",
                {"entity_id": obs.entity_id, "key": key, "time": obs.time},
            )
        return EventKind.SERVICE_PENDING_REMOVAL

    # ------------------------------------------------------------------

    def remove_service(
        self, entity_id: str, key: str, time: float, obs_seq: Optional[int] = None
    ) -> bool:
        """Evict a staged service (scheduler command after the 72 h window)."""
        state = self.journal.peek_current(entity_id)
        last_time = state.get("last_event_time")
        if last_time is not None and time < last_time:
            self.stats.stale_dropped += 1  # replayed command from before a crash
            return False
        service = state["services"].get(key)
        if service is None:
            return False
        payload: Dict[str, Any] = {"key": key}
        if obs_seq is not None:
            payload["obs_seq"] = obs_seq
        self.journal.append(entity_id, time, EventKind.SERVICE_REMOVED, payload)
        self.stats.removed += 1
        self.bus.publish("service_removed", {"entity_id": entity_id, "key": key, "time": time})
        return True

    def _check_pseudo(self, obs: ScanObservation, new_record: Dict[str, Any]) -> None:
        state = self.journal.peek_current(obs.entity_id)
        if state["meta"].get("pseudo_host"):
            return
        services = state["services"]
        if len(services) <= self.PSEUDO_PORT_THRESHOLD:
            return
        signatures = set()
        for service in services.values():
            signatures.add(_record_signature(service["record"]))
            if len(signatures) > 2:
                return
        self._journal(obs, EventKind.HOST_META, {"meta": {"pseudo_host": True}})
        self.bus.publish(
            "host_pseudo_flagged", {"entity_id": obs.entity_id, "time": obs.time}
        )
        self.stats.pseudo_flagged += 1


class _RecordingBus:
    """Captures publishes with the observation position that caused them,
    so the parallel ingest path can replay them in input order."""

    __slots__ = ("published", "position")

    def __init__(self) -> None:
        self.published: List[Tuple[int, str, Dict[str, Any]]] = []
        self.position = -1

    def publish(self, topic: str, message: Dict[str, Any]) -> None:
        self.published.append((self.position, topic, message))


def _diff_records(old: Dict[str, Any], new: Dict[str, Any]) -> Tuple[Dict[str, Any], list]:
    """Field-level delta: (changed/added fields, removed field names)."""
    changed = {
        k: v
        for k, v in new.items()
        if k not in old or not _values_equal(old[k], v)
    }
    removed = [k for k in old if k not in new]
    return changed, removed


def _values_equal(a: Any, b: Any) -> bool:
    """Equality across durability flavors.

    A record read back through the WAL or a replica is JSON-shaped: tuples
    come back as lists.  A refresh comparing a fresh observation (tuples)
    against such a stored record must not see phantom field changes, so
    sequences compare by content regardless of tuple/list flavor.
    """
    if a.__class__ is b.__class__ and a == b:
        return True
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(_values_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(_values_equal(v, b[k]) for k, v in a.items())
    return a == b


def _record_signature(record: Dict[str, Any]) -> str:
    """A loose identity for pseudo-service detection (raw banner shape).

    Canonical JSON (sorted keys at every nesting level) so two records with
    the same content but different dict insertion order — including inside
    nested values — hash identically.
    """
    interesting = {k: v for k, v in record.items() if not k.startswith("tls.")}
    return json.dumps(interesting, sort_keys=True, default=repr, separators=(",", ":"))


_MISSING = object()
