"""The CQRS write (command) side: turning scan results into journal events.

For each inbound scan the processor (1) retrieves the entity's current
state, (2) computes the delta command, (3) journals the resulting event,
and (4) enqueues follow-up work on the bus — the paper's four write-side
steps.  It also implements two Censys data-quality policies:

* *eviction staging*: a failed scan of a known service marks it pending
  removal; actual removal is a separate command issued by the scheduler
  after the 72-hour window;
* *pseudo-service filtering*: hosts answering identically on many ports are
  flagged and excluded from serving (competitor engines skip this, which
  is one source of their inflated self-reported counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.pipeline.events import EventKind, service_key
from repro.pipeline.journal import EventJournal
from repro.pipeline.queues import EventBus
from repro.protocols.interrogate import InterrogationResult

__all__ = ["ScanObservation", "WriteSideProcessor", "host_entity_id"]


def host_entity_id(ip_text: str) -> str:
    return f"host:{ip_text}"


@dataclass(slots=True)
class ScanObservation:
    """One completed interrogation (successful or failed) of one binding."""

    entity_id: str
    time: float
    port: int
    transport: str
    result: InterrogationResult
    source: str = "scan"   # "discovery" | "refresh" | "predictive" | "name"


@dataclass(slots=True)
class WriteStats:
    observations: int = 0
    found: int = 0
    changed: int = 0
    refreshed: int = 0
    pending: int = 0
    removed: int = 0
    pseudo_flagged: int = 0


class WriteSideProcessor:
    """Applies scan observations to the journal and emits follow-up work."""

    #: A host answering identically on more than this many ports is pseudo.
    PSEUDO_PORT_THRESHOLD = 20

    def __init__(
        self,
        journal: EventJournal,
        bus: Optional[EventBus] = None,
        filter_pseudo_services: bool = True,
        delta_encoding: bool = True,
    ) -> None:
        self.journal = journal
        self.bus = bus or EventBus()
        self.filter_pseudo_services = filter_pseudo_services
        #: False journals the full record on every rescan instead of the
        #: field-level diff — the storage-cost ablation's strawman.
        self.delta_encoding = delta_encoding
        self.stats = WriteStats()

    # ------------------------------------------------------------------

    def process(self, obs: ScanObservation) -> Optional[str]:
        """Apply one observation; returns the journal event kind (or None)."""
        self.stats.observations += 1
        state = self.journal.peek_current(obs.entity_id)
        if self.filter_pseudo_services and state["meta"].get("pseudo_host"):
            return None  # filtered: pseudo hosts are not part of the map
        key = service_key(obs.port, obs.transport)
        existing = state["services"].get(key)
        if obs.result.success and obs.result.service_name:
            return self._apply_success(obs, key, existing)
        return self._apply_failure(obs, key, existing)

    def _apply_success(
        self, obs: ScanObservation, key: str, existing: Optional[Dict[str, Any]]
    ) -> str:
        record = dict(obs.result.record)
        service_name = obs.result.service_name
        if existing is None:
            self.journal.append(
                obs.entity_id,
                obs.time,
                EventKind.SERVICE_FOUND,
                {
                    "key": key,
                    "protocol": obs.result.protocol,
                    "service_name": service_name,
                    "record": record,
                    "source": obs.source,
                },
            )
            self.stats.found += 1
            self.bus.publish(
                "service_found",
                {"entity_id": obs.entity_id, "key": key, "record": record, "time": obs.time,
                 "service_name": service_name, "source": obs.source},
            )
            if self.filter_pseudo_services:
                self._check_pseudo(obs, record)
            return EventKind.SERVICE_FOUND

        # Change detection against the previous scan of this binding.
        changed, removed_fields = _diff_records(existing["record"], record)
        name_changed = existing.get("service_name") != service_name
        if not changed and not removed_fields and not name_changed:
            refresh_payload: Dict[str, Any] = {"key": key}
            if not self.delta_encoding:
                refresh_payload["record"] = record  # full-record strawman
            self.journal.append(
                obs.entity_id, obs.time, EventKind.SERVICE_REFRESHED, refresh_payload
            )
            self.stats.refreshed += 1
            return EventKind.SERVICE_REFRESHED
        if not self.delta_encoding:
            changed = record  # store everything, not the diff
        payload: Dict[str, Any] = {"key": key, "changed": changed, "removed_fields": removed_fields}
        if name_changed:
            payload["service_name"] = service_name
            payload["protocol"] = obs.result.protocol
        self.journal.append(obs.entity_id, obs.time, EventKind.SERVICE_CHANGED, payload)
        self.stats.changed += 1
        self.bus.publish(
            "service_changed",
            {"entity_id": obs.entity_id, "key": key, "changed": changed, "time": obs.time,
             "record": record, "service_name": service_name},
        )
        return EventKind.SERVICE_CHANGED

    def _apply_failure(
        self, obs: ScanObservation, key: str, existing: Optional[Dict[str, Any]]
    ) -> Optional[str]:
        if existing is None:
            return None  # nothing known to stage for removal
        first_failure = existing.get("pending_removal_since") is None
        # Repeated failures are journaled too: they record the scan attempt
        # (last_checked) while the original staging time keeps the eviction
        # clock running.
        self.journal.append(
            obs.entity_id, obs.time, EventKind.SERVICE_PENDING_REMOVAL, {"key": key}
        )
        if first_failure:
            self.stats.pending += 1
            self.bus.publish(
                "service_unresponsive",
                {"entity_id": obs.entity_id, "key": key, "time": obs.time},
            )
        return EventKind.SERVICE_PENDING_REMOVAL

    # ------------------------------------------------------------------

    def remove_service(self, entity_id: str, key: str, time: float) -> bool:
        """Evict a staged service (scheduler command after the 72 h window)."""
        state = self.journal.peek_current(entity_id)
        service = state["services"].get(key)
        if service is None:
            return False
        self.journal.append(entity_id, time, EventKind.SERVICE_REMOVED, {"key": key})
        self.stats.removed += 1
        self.bus.publish("service_removed", {"entity_id": entity_id, "key": key, "time": time})
        return True

    def _check_pseudo(self, obs: ScanObservation, new_record: Dict[str, Any]) -> None:
        state = self.journal.peek_current(obs.entity_id)
        if state["meta"].get("pseudo_host"):
            return
        services = state["services"]
        if len(services) <= self.PSEUDO_PORT_THRESHOLD:
            return
        signatures = set()
        for service in services.values():
            signatures.add(_record_signature(service["record"]))
            if len(signatures) > 2:
                return
        self.journal.append(
            obs.entity_id, obs.time, EventKind.HOST_META, {"meta": {"pseudo_host": True}}
        )
        self.bus.publish(
            "host_pseudo_flagged", {"entity_id": obs.entity_id, "time": obs.time}
        )
        self.stats.pseudo_flagged += 1


def _diff_records(old: Dict[str, Any], new: Dict[str, Any]) -> Tuple[Dict[str, Any], list]:
    """Field-level delta: (changed/added fields, removed field names)."""
    changed = {k: v for k, v in new.items() if old.get(k, _MISSING) != v}
    removed = [k for k in old if k not in new]
    return changed, removed


def _record_signature(record: Dict[str, Any]) -> str:
    """A loose identity for pseudo-service detection (raw banner shape)."""
    interesting = {k: v for k, v in sorted(record.items()) if not k.startswith("tls.")}
    return repr(interesting)


_MISSING = object()
