"""The CQRS write (command) side: turning scan results into journal events.

For each inbound scan the processor (1) retrieves the entity's current
state, (2) computes the delta command, (3) journals the resulting event,
and (4) enqueues follow-up work on the bus — the paper's four write-side
steps.  It also implements two Censys data-quality policies:

* *eviction staging*: a failed scan of a known service marks it pending
  removal; actual removal is a separate command issued by the scheduler
  after the 72-hour window;
* *pseudo-service filtering*: hosts answering identically on many ports are
  flagged and excluded from serving (competitor engines skip this, which
  is one source of their inflated self-reported counts).

Fault tolerance (opt-in): with a :class:`~repro.pipeline.faults.FaultInjector`
attached, :meth:`WriteSideProcessor.submit` retries transient interrogation
timeouts on the processor's exponential-backoff
:class:`~repro.pipeline.reliability.RetryPolicy` and dead-letters
observations that exhaust their attempts.  Observations older than the
entity's journal head (redelivered after a crash, or reordered in transit)
are dropped as *stale* — last-writer-wins — instead of corrupting the
journal's time order.  Each observation's events commit as one atomic WAL
batch when the journal is durable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.pipeline.events import EventKind, service_key
from repro.pipeline.faults import FaultInjector, TransientScanError
from repro.pipeline.journal import EventJournal
from repro.pipeline.queues import EventBus
from repro.pipeline.reliability import DeadLetterQueue, RetryPolicy
from repro.protocols.interrogate import InterrogationResult

__all__ = ["ScanObservation", "WriteStats", "WriteSideProcessor", "host_entity_id"]


def host_entity_id(ip_text: str) -> str:
    return f"host:{ip_text}"


@dataclass(slots=True)
class ScanObservation:
    """One completed interrogation (successful or failed) of one binding."""

    entity_id: str
    time: float
    port: int
    transport: str
    result: InterrogationResult
    source: str = "scan"   # "discovery" | "refresh" | "predictive" | "name"
    #: Monotonic delivery sequence number (set by the ingest layer when the
    #: pipeline runs over an at-least-once channel; None for direct calls).
    obs_seq: Optional[int] = None


@dataclass(slots=True)
class WriteStats:
    observations: int = 0
    found: int = 0
    changed: int = 0
    refreshed: int = 0
    pending: int = 0
    removed: int = 0
    pseudo_flagged: int = 0
    #: Fault-tolerance accounting.
    retries: int = 0
    backoff_hours: float = 0.0
    dead_lettered: int = 0
    stale_dropped: int = 0


class WriteSideProcessor:
    """Applies scan observations to the journal and emits follow-up work."""

    #: A host answering identically on more than this many ports is pseudo.
    PSEUDO_PORT_THRESHOLD = 20

    def __init__(
        self,
        journal: EventJournal,
        bus: Optional[EventBus] = None,
        filter_pseudo_services: bool = True,
        delta_encoding: bool = True,
        faults: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
        dlq: Optional[DeadLetterQueue] = None,
    ) -> None:
        self.journal = journal
        self.bus = bus or EventBus()
        self.filter_pseudo_services = filter_pseudo_services
        #: False journals the full record on every rescan instead of the
        #: field-level diff — the storage-cost ablation's strawman.
        self.delta_encoding = delta_encoding
        self.faults = faults
        self.retry = retry or RetryPolicy()
        self.dlq = dlq if dlq is not None else DeadLetterQueue()
        self.stats = WriteStats()

    # ------------------------------------------------------------------

    def submit(self, obs: ScanObservation) -> Optional[str]:
        """Process with retries: the at-least-once ingestion entry point.

        Transient interrogation timeouts back off exponentially; once
        ``retry.max_attempts`` is exhausted the observation is dead-lettered
        and ``None`` is returned.  A :class:`SimulatedCrash` always
        propagates — the driver owns recovery.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                return self.process(obs)
            except TransientScanError:
                if attempt >= self.retry.max_attempts:
                    self.dlq.push(obs, "transient timeouts exhausted", attempts=attempt)
                    self.stats.dead_lettered += 1
                    return None
                self.stats.retries += 1
                self.stats.backoff_hours += self.retry.backoff(attempt)

    def process(self, obs: ScanObservation) -> Optional[str]:
        """Apply one observation; returns the journal event kind (or None)."""
        if self.faults is not None:
            self.faults.maybe_timeout(obs.obs_seq)  # raises TransientScanError
        self.stats.observations += 1
        state = self.journal.peek_current(obs.entity_id)
        last_time = state.get("last_event_time")
        if last_time is not None and obs.time < last_time:
            # Redelivered or reordered observation older than the journal
            # head: everything it could say has been superseded.
            self.stats.stale_dropped += 1
            return None
        if self.filter_pseudo_services and state["meta"].get("pseudo_host"):
            return None  # filtered: pseudo hosts are not part of the map
        key = service_key(obs.port, obs.transport)
        existing = state["services"].get(key)
        with self.journal.transaction():
            if obs.result.success and obs.result.service_name:
                return self._apply_success(obs, key, existing)
            return self._apply_failure(obs, key, existing)

    def _journal(
        self, obs: ScanObservation, kind: str, payload: Dict[str, Any]
    ) -> None:
        """Append one event, stamping the delivery sequence when present."""
        if obs.obs_seq is not None:
            payload = dict(payload)
            payload["obs_seq"] = obs.obs_seq
        self.journal.append(obs.entity_id, obs.time, kind, payload)

    def _apply_success(
        self, obs: ScanObservation, key: str, existing: Optional[Dict[str, Any]]
    ) -> str:
        record = dict(obs.result.record)
        service_name = obs.result.service_name
        if existing is None:
            self._journal(
                obs,
                EventKind.SERVICE_FOUND,
                {
                    "key": key,
                    "protocol": obs.result.protocol,
                    "service_name": service_name,
                    "record": record,
                    "source": obs.source,
                },
            )
            self.stats.found += 1
            self.bus.publish(
                "service_found",
                {"entity_id": obs.entity_id, "key": key, "record": record, "time": obs.time,
                 "service_name": service_name, "source": obs.source},
            )
            if self.filter_pseudo_services:
                self._check_pseudo(obs, record)
            return EventKind.SERVICE_FOUND

        # Change detection against the previous scan of this binding.
        changed, removed_fields = _diff_records(existing["record"], record)
        name_changed = existing.get("service_name") != service_name
        if not changed and not removed_fields and not name_changed:
            refresh_payload: Dict[str, Any] = {"key": key}
            if not self.delta_encoding:
                refresh_payload["record"] = record  # full-record strawman
            self._journal(obs, EventKind.SERVICE_REFRESHED, refresh_payload)
            self.stats.refreshed += 1
            return EventKind.SERVICE_REFRESHED
        if not self.delta_encoding:
            changed = record  # store everything, not the diff
        payload: Dict[str, Any] = {"key": key, "changed": changed, "removed_fields": removed_fields}
        if name_changed:
            payload["service_name"] = service_name
            payload["protocol"] = obs.result.protocol
        self._journal(obs, EventKind.SERVICE_CHANGED, payload)
        self.stats.changed += 1
        self.bus.publish(
            "service_changed",
            {"entity_id": obs.entity_id, "key": key, "changed": changed, "time": obs.time,
             "record": record, "service_name": service_name},
        )
        return EventKind.SERVICE_CHANGED

    def _apply_failure(
        self, obs: ScanObservation, key: str, existing: Optional[Dict[str, Any]]
    ) -> Optional[str]:
        if existing is None:
            return None  # nothing known to stage for removal
        first_failure = existing.get("pending_removal_since") is None
        # Repeated failures are journaled too: they record the scan attempt
        # (last_checked) while the original staging time keeps the eviction
        # clock running.
        self._journal(obs, EventKind.SERVICE_PENDING_REMOVAL, {"key": key})
        if first_failure:
            self.stats.pending += 1
            self.bus.publish(
                "service_unresponsive",
                {"entity_id": obs.entity_id, "key": key, "time": obs.time},
            )
        return EventKind.SERVICE_PENDING_REMOVAL

    # ------------------------------------------------------------------

    def remove_service(
        self, entity_id: str, key: str, time: float, obs_seq: Optional[int] = None
    ) -> bool:
        """Evict a staged service (scheduler command after the 72 h window)."""
        state = self.journal.peek_current(entity_id)
        last_time = state.get("last_event_time")
        if last_time is not None and time < last_time:
            self.stats.stale_dropped += 1  # replayed command from before a crash
            return False
        service = state["services"].get(key)
        if service is None:
            return False
        payload: Dict[str, Any] = {"key": key}
        if obs_seq is not None:
            payload["obs_seq"] = obs_seq
        self.journal.append(entity_id, time, EventKind.SERVICE_REMOVED, payload)
        self.stats.removed += 1
        self.bus.publish("service_removed", {"entity_id": entity_id, "key": key, "time": time})
        return True

    def _check_pseudo(self, obs: ScanObservation, new_record: Dict[str, Any]) -> None:
        state = self.journal.peek_current(obs.entity_id)
        if state["meta"].get("pseudo_host"):
            return
        services = state["services"]
        if len(services) <= self.PSEUDO_PORT_THRESHOLD:
            return
        signatures = set()
        for service in services.values():
            signatures.add(_record_signature(service["record"]))
            if len(signatures) > 2:
                return
        self._journal(obs, EventKind.HOST_META, {"meta": {"pseudo_host": True}})
        self.bus.publish(
            "host_pseudo_flagged", {"entity_id": obs.entity_id, "time": obs.time}
        )
        self.stats.pseudo_flagged += 1


def _diff_records(old: Dict[str, Any], new: Dict[str, Any]) -> Tuple[Dict[str, Any], list]:
    """Field-level delta: (changed/added fields, removed field names)."""
    changed = {
        k: v
        for k, v in new.items()
        if k not in old or not _values_equal(old[k], v)
    }
    removed = [k for k in old if k not in new]
    return changed, removed


def _values_equal(a: Any, b: Any) -> bool:
    """Equality across durability flavors.

    A record read back through the WAL or a replica is JSON-shaped: tuples
    come back as lists.  A refresh comparing a fresh observation (tuples)
    against such a stored record must not see phantom field changes, so
    sequences compare by content regardless of tuple/list flavor.
    """
    if a.__class__ is b.__class__ and a == b:
        return True
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(_values_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(_values_equal(v, b[k]) for k, v in a.items())
    return a == b


def _record_signature(record: Dict[str, Any]) -> str:
    """A loose identity for pseudo-service detection (raw banner shape).

    Canonical JSON (sorted keys at every nesting level) so two records with
    the same content but different dict insertion order — including inside
    nested values — hash identically.
    """
    interesting = {k: v for k, v in record.items() if not k.startswith("tls.")}
    return json.dumps(interesting, sort_keys=True, default=repr, separators=(",", ":"))


_MISSING = object()
