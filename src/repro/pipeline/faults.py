"""Seeded, deterministic fault injection for the CQRS pipeline.

A :class:`FaultPlan` declares *what* can go wrong — observation drops,
duplicates, reorderings, delivery delays, transient interrogation
timeouts, and simulated write-side crashes at configurable durable-event
indices — and a :class:`FaultInjector` turns the plan into concrete,
replayable decisions.

Every decision is a pure function of ``(plan.seed, decision key)``: rolls
are derived by hashing the key with BLAKE2b rather than drawing from a
shared RNG stream, so the schedule for observation #17's third delivery
attempt is identical no matter how many other decisions were made first,
across processes and platforms (no dependence on ``PYTHONHASHSEED``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "CrashPoint",
    "FaultPlan",
    "FaultInjector",
    "SimulatedCrash",
    "TransientScanError",
]


class SimulatedCrash(Exception):
    """The write side 'died' at a planned crash point (chaos testing).

    ``point`` is either a :class:`CrashPoint` (durable-event-indexed
    crashes) or a string naming an instrumentation hook (e.g. the WAL's
    mid-group-commit ``"pre_fsync"`` / ``"post_fsync"`` points).
    """

    def __init__(self, point) -> None:
        if isinstance(point, str):
            super().__init__(f"simulated crash at {point}")
        else:
            super().__init__(
                f"simulated crash {point.mode!r} at durable event {point.event_index}"
            )
        self.point = point


class TransientScanError(Exception):
    """A transient interrogation failure (timeout); retryable."""


@dataclass(frozen=True, slots=True)
class CrashPoint:
    """Crash when durable event number ``event_index`` (1-based) commits.

    ``mode`` controls what reaches the WAL for the batch containing that
    event: ``"before"`` — nothing; ``"torn"`` — a truncated record that
    recovery must detect and discard; ``"after"`` — the full batch (the
    crash hits between the fsync and the acknowledgement).
    """

    event_index: int
    mode: str = "after"

    def __post_init__(self) -> None:
        if self.mode not in ("before", "after", "torn"):
            raise ValueError(f"unknown crash mode {self.mode!r}")
        if self.event_index < 1:
            raise ValueError("event_index is 1-based")


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A declarative, seeded schedule of pipeline faults.

    Rates are independent per-decision probabilities in [0, 1].  The plan
    is immutable and hashable so test grids can parametrize over it.
    """

    seed: int = 0
    #: Delivery-channel faults (applied per transmission attempt).
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    delay_rate: float = 0.0
    max_delay_rounds: int = 2
    #: Write-side faults.
    timeout_rate: float = 0.0
    max_timeout_burst: int = 2
    crash_points: Tuple[CrashPoint, ...] = ()
    #: Event-bus faults (applied per queued message).
    bus_drop_rate: float = 0.0
    bus_duplicate_rate: float = 0.0
    bus_delay_rate: float = 0.0

    def injector(self) -> "FaultInjector":
        return FaultInjector(self)


@dataclass(slots=True)
class FaultCounters:
    """What the injector actually did (for assertions and reporting)."""

    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    reordered: int = 0
    timeouts: int = 0
    crashes: int = 0
    bus_dropped: int = 0
    bus_duplicated: int = 0
    bus_delayed: int = 0


class FaultInjector:
    """Executes a :class:`FaultPlan` with hash-derived deterministic rolls."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.counters = FaultCounters()
        self._crash_points = sorted(plan.crash_points, key=lambda p: p.event_index)
        self._timeout_bursts: Dict[int, int] = {}
        self._timeout_attempts: Dict[int, int] = {}
        self._auto_key = 0

    # -- deterministic rolls ----------------------------------------------

    def roll(self, key: str) -> float:
        """Uniform [0, 1) derived from (seed, key); stable across processes."""
        digest = hashlib.blake2b(
            f"{self.plan.seed}:{key}".encode("utf-8"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") / 2**64

    # -- channel faults (per transmission attempt) -------------------------

    def should_drop(self, seq: int, attempt: int) -> bool:
        hit = self.roll(f"drop:{seq}:{attempt}") < self.plan.drop_rate
        if hit:
            self.counters.dropped += 1
        return hit

    def should_duplicate(self, seq: int, attempt: int) -> bool:
        hit = self.roll(f"dup:{seq}:{attempt}") < self.plan.duplicate_rate
        if hit:
            self.counters.duplicated += 1
        return hit

    def delay_rounds(self, seq: int, attempt: int) -> int:
        """0 = deliver this round; k>0 = hold for k delivery rounds."""
        if self.roll(f"delay:{seq}:{attempt}") >= self.plan.delay_rate:
            return 0
        self.counters.delayed += 1
        span = max(1, self.plan.max_delay_rounds)
        return 1 + int(self.roll(f"delayn:{seq}:{attempt}") * span) % span

    def should_swap(self, round_no: int, position: int) -> bool:
        """Whether to swap the adjacent pair at ``position`` this round."""
        hit = self.roll(f"swap:{round_no}:{position}") < self.plan.reorder_rate
        if hit:
            self.counters.reordered += 1
        return hit

    # -- write-side faults -------------------------------------------------

    def timeout_burst(self, key: int) -> int:
        """How many consecutive attempts for this observation time out.

        Decided once per observation key, so retries see a finite burst and
        the schedule does not depend on how many retries actually happen.
        """
        if key not in self._timeout_bursts:
            burst = 0
            if self.roll(f"timeout:{key}") < self.plan.timeout_rate:
                burst = 1 + int(
                    self.roll(f"timeoutn:{key}") * max(1, self.plan.max_timeout_burst)
                ) % max(1, self.plan.max_timeout_burst)
            self._timeout_bursts[key] = burst
        return self._timeout_bursts[key]

    def maybe_timeout(self, key: Optional[int]) -> None:
        """Raise :class:`TransientScanError` while the burst lasts."""
        if key is None:
            self._auto_key -= 1  # negative keys: never collide with obs seqs
            key = self._auto_key
        burst = self.timeout_burst(key)
        attempt = self._timeout_attempts.get(key, 0)
        if attempt < burst:
            self._timeout_attempts[key] = attempt + 1
            self.counters.timeouts += 1
            raise TransientScanError(f"injected interrogation timeout (obs {key}, attempt {attempt})")

    # -- crash points ------------------------------------------------------

    def crash_for_range(self, lo: int, hi: int) -> Optional[CrashPoint]:
        """The crash point covered by durable-event range [lo, hi], if any.

        Consumes the point so the retried batch commits cleanly.  Stale
        points (index below ``lo``, e.g. skipped by a ``before`` crash whose
        batch was never retried) are discarded.
        """
        while self._crash_points and self._crash_points[0].event_index < lo:
            self._crash_points.pop(0)
        if self._crash_points and lo <= self._crash_points[0].event_index <= hi:
            return self._crash_points.pop(0)
        return None

    def raise_crash(self, point: CrashPoint) -> None:
        self.counters.crashes += 1
        raise SimulatedCrash(point)

    # -- bus faults --------------------------------------------------------

    def bus_should_drop(self, seq: int) -> bool:
        hit = self.roll(f"bus-drop:{seq}") < self.plan.bus_drop_rate
        if hit:
            self.counters.bus_dropped += 1
        return hit

    def bus_should_duplicate(self, seq: int) -> bool:
        hit = self.roll(f"bus-dup:{seq}") < self.plan.bus_duplicate_rate
        if hit:
            self.counters.bus_duplicated += 1
        return hit

    def bus_should_delay(self, seq: int, times_delayed: int) -> bool:
        if times_delayed >= max(0, self.plan.max_delay_rounds):
            return False
        hit = self.roll(f"bus-delay:{seq}:{times_delayed}") < self.plan.bus_delay_rate
        if hit:
            self.counters.bus_delayed += 1
        return hit
