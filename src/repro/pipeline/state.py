"""Entity state and event application (the replay function).

State is a plain, JSON-able nested dict so snapshots are cheap to copy and
size-account.  ``apply_event`` is the single replay function used by both
the write side (to maintain current state) and the read side (to
reconstruct state at arbitrary timestamps) — keeping them identical is what
makes CQRS reconstruction trustworthy.
"""

from __future__ import annotations

import copy
import hashlib
import json
from typing import Any, Dict

from repro.pipeline.events import Event, EventKind

__all__ = [
    "new_entity_state",
    "apply_event",
    "live_services",
    "service_view",
    "canonical_json",
    "state_digest",
]


def canonical_json(value: Any) -> str:
    """Canonical JSON for state/read-result equality across storage flavors.

    The WAL, replication wire, and cold tier all round-trip values through
    JSON (tuples become lists); two reads are "bit-identical" when their
    canonical JSON matches, regardless of which storage path produced them.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"), default=str)


def state_digest(value: Any) -> str:
    """Stable digest of ``canonical_json`` — cheap cross-run equality token."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


def new_entity_state(entity_id: str) -> Dict[str, Any]:
    """The empty state of an entity that has never been observed."""
    return {
        "entity_id": entity_id,
        "services": {},
        "meta": {},
        "first_seen": None,
        "last_event_time": None,
    }


def apply_event(state: Dict[str, Any], event: Event) -> Dict[str, Any]:
    """Apply one journal event in place (returns ``state`` for chaining)."""
    payload = event.payload
    services = state["services"]
    state["last_event_time"] = event.time
    if state["first_seen"] is None:
        state["first_seen"] = event.time

    if event.kind == EventKind.SERVICE_FOUND:
        key = payload["key"]
        services[key] = {
            "protocol": payload.get("protocol"),
            "service_name": payload.get("service_name"),
            "record": dict(payload.get("record", {})),
            "first_seen": event.time,
            "last_seen": event.time,
            "last_checked": event.time,
            "pending_removal_since": None,
            "source": payload.get("source", "scan"),
        }
    elif event.kind == EventKind.SERVICE_CHANGED:
        service = services.get(payload["key"])
        if service is not None:
            service["record"].update(payload.get("changed", {}))
            for field_name in payload.get("removed_fields", ()):
                service["record"].pop(field_name, None)
            if "service_name" in payload:
                service["service_name"] = payload["service_name"]
            if "protocol" in payload:
                service["protocol"] = payload["protocol"]
            service["last_seen"] = event.time
            service["last_checked"] = event.time
            service["pending_removal_since"] = None
    elif event.kind == EventKind.SERVICE_REFRESHED:
        service = services.get(payload["key"])
        if service is not None:
            service["last_seen"] = event.time
            service["last_checked"] = event.time
            service["pending_removal_since"] = None
    elif event.kind == EventKind.SERVICE_PENDING_REMOVAL:
        service = services.get(payload["key"])
        if service is not None:
            service["last_checked"] = event.time
            if service["pending_removal_since"] is None:
                service["pending_removal_since"] = event.time
    elif event.kind == EventKind.SERVICE_UNPENDED:
        service = services.get(payload["key"])
        if service is not None:
            service["pending_removal_since"] = None
            service["last_seen"] = event.time
            service["last_checked"] = event.time
    elif event.kind == EventKind.SERVICE_REMOVED:
        services.pop(payload["key"], None)
    elif event.kind in (EventKind.HOST_META, EventKind.ENTITY_OBSERVED):
        state["meta"].update(payload.get("meta", {}))
    elif event.kind == EventKind.CERT_OBSERVED:
        state["meta"].update(payload.get("meta", {}))
    elif event.kind == EventKind.CERT_VALIDATED:
        state["meta"]["validation"] = dict(payload.get("validation", {}))
    elif event.kind == EventKind.CERT_REVOKED:
        state["meta"]["revoked"] = True
        state["meta"]["revoked_at"] = event.time
    elif event.kind == EventKind.SUBSCRIPTION_REGISTERED:
        state["meta"]["subscription"] = dict(payload.get("subscription", {}))
        state["meta"].pop("cancelled", None)
    elif event.kind == EventKind.SUBSCRIPTION_CANCELLED:
        # The registration stays for audit; the flag hides it from restore.
        state["meta"]["cancelled"] = True
    else:
        raise ValueError(f"unknown event kind: {event.kind}")
    return state


def live_services(state: Dict[str, Any], include_pending: bool = True) -> Dict[str, Dict[str, Any]]:
    """The entity's current services, optionally hiding pending-removal ones."""
    services = state.get("services", {})
    if include_pending:
        return dict(services)
    return {k: s for k, s in services.items() if s.get("pending_removal_since") is None}


def service_view(state: Dict[str, Any], key: str) -> Dict[str, Any] | None:
    return state.get("services", {}).get(key)


def snapshot_state(state: Dict[str, Any]) -> Dict[str, Any]:
    """A deep copy suitable for storing as a snapshot row."""
    return copy.deepcopy(state)
