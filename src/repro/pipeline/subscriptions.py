"""Standing queries: persistent subscriptions evaluated per document event.

The paper's third query consumer — continuous monitoring that alerts on
attack-surface changes — on top of the compiled plan layer:

* a subscription is a :class:`~repro.search.plan.QueryPlan` registered
  under a stable id; registrations are journaled as
  ``subscription_registered`` / ``subscription_cancelled`` events on
  ``sub:<id>`` entities, so they replay through WAL recovery and survive
  compaction folds exactly like host state does;
* an **inverted predicate index** maps anchor ``(field, token)`` pairs to
  subscription ids.  A plan's anchors are tokens every matching document
  must contain (a non-wildcard term's value; for AND, any one anchorable
  conjunct; for OR, the union over all disjuncts — every disjunct must be
  anchorable).  Per document event only the subscriptions anchored to one
  of the document's tokens — plus the un-anchorable "broad" residue and
  the subscriptions *currently matching* the entity — are evaluated, so
  per-event cost scales with matches, not with total registrations;
* notifications are **transition-based** (``entered`` / ``exited`` the
  result set), which requires remembering, per subscription, which
  entities currently match — the reverse map is also what detects exits
  when a document changes or is deleted;
* delivery rides the PR 2 at-least-once machinery: a
  :class:`~repro.pipeline.delivery.FaultyChannel` driven by a seeded
  :class:`~repro.pipeline.faults.FaultPlan`, retransmission of unacked
  notifications with :class:`~repro.pipeline.reliability.RetryPolicy`
  attempt accounting, exhausted attempts parked in a
  :class:`~repro.pipeline.reliability.DeadLetterQueue`.  Unlike scan
  observations, notifications are independent of each other, so the
  consumer dedupes by sequence number instead of gap-buffering through a
  resequencer (a dead-lettered notification must not stall the stream).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, Union

from repro.pipeline.delivery import FaultyChannel
from repro.pipeline.events import EventKind
from repro.pipeline.faults import FaultPlan
from repro.pipeline.reliability import DeadLetterQueue, RetryPolicy
from repro.search.plan import QueryPlan, compile_query
from repro.search.query import Bool, QueryNode, Term

__all__ = [
    "Notification",
    "NotificationDeliverer",
    "Subscription",
    "SubscriptionEngine",
    "anchor_tokens",
    "subscription_entity_id",
]


def subscription_entity_id(sub_id: str) -> str:
    """The journal entity a subscription's lifecycle events live on."""
    return f"sub:{sub_id}"


# ----------------------------------------------------------------------
# Anchor extraction
# ----------------------------------------------------------------------


def anchor_tokens(node: QueryNode) -> Optional[FrozenSet[Tuple[str, str]]]:
    """Tokens every matching document must contain, or None.

    The invariant the inverted predicate index relies on: if a document
    matches ``node``, its token pairs (per-field and full-text, exactly
    the pairs the search index builds postings for) include at least one
    anchor.  A non-wildcard term anchors on its own value; an AND anchors
    on any one anchorable conjunct (the smallest, for selectivity); an OR
    needs *every* disjunct anchorable and takes the union.  Wildcards,
    comparisons, ranges, and NOT are un-anchorable — matching documents
    need not contain any specific token — and make the (sub)query
    "broad", i.e. evaluated on every event.
    """
    if isinstance(node, Term) and not node.is_wildcard:
        return frozenset({(node.field or "", node.value.lower())})
    if isinstance(node, Bool):
        if node.op == "and":
            best: Optional[FrozenSet[Tuple[str, str]]] = None
            for child in node.children:
                anchors = anchor_tokens(child)
                if anchors is not None and (best is None or len(anchors) < len(best)):
                    best = anchors
            return best
        union: Set[Tuple[str, str]] = set()
        for child in node.children:
            anchors = anchor_tokens(child)
            if anchors is None:
                return None
            union |= anchors
        return frozenset(union)
    return None


def _doc_token_pairs(doc: Dict[str, List[Any]]) -> Set[Tuple[str, str]]:
    """The document's (field, token) pairs, full text under field ""."""
    pairs: Set[Tuple[str, str]] = set()
    for field, values in doc.items():
        for value in values:
            text = str(value).lower()
            tokens = {text}
            tokens.update(text.split())
            for token in tokens:
                pairs.add((field, token))
                pairs.add(("", token))
    return pairs


# ----------------------------------------------------------------------
# Notifications and their delivery
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Notification:
    """One standing-query result-set transition."""

    seq: int
    sub_id: str
    entity_id: str
    transition: str  # "entered" | "exited"
    time: float
    query: str  # the canonical plan key

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "sub_id": self.sub_id,
            "entity_id": self.entity_id,
            "transition": self.transition,
            "time": self.time,
            "query": self.query,
        }


class NotificationDeliverer:
    """At-least-once notification delivery with retry and dead-lettering.

    Emitted notifications sit in an outbox until acknowledged; each
    :meth:`pump` round retransmits everything unacked through the faulty
    channel (drop / duplicate / delay per the seeded plan), dedupes
    arrivals by sequence number, and accounts retry backoff.  A
    notification that exhausts ``retry.max_attempts`` transmissions moves
    to the dead-letter queue (and is acked so it cannot wedge the
    outbox); :meth:`redrive` re-queues dead letters once the fault
    clears.
    """

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.channel = FaultyChannel(plan.injector() if plan is not None else None)
        self.retry = retry or RetryPolicy(max_attempts=8, base_delay=0.05, max_delay=1.0)
        self.dead_letters = DeadLetterQueue()
        self._outbox: Dict[int, Notification] = {}
        self._unacked: Set[int] = set()
        self._attempts: Dict[int, int] = {}
        self._seen: Set[int] = set()
        self._delivered: List[Notification] = []
        self.transmissions = 0
        self.duplicates_dropped = 0
        self.backoff_hours = 0.0

    def offer(self, notification: Notification) -> None:
        self._outbox[notification.seq] = notification
        self._unacked.add(notification.seq)

    def pump(self, max_rounds: int = 64) -> int:
        """Run delivery rounds until the outbox drains (or the cap hits);
        returns how many new notifications were delivered."""
        before = len(self._delivered)
        rounds = 0
        while (self._unacked or self.channel.in_flight) and rounds < max_rounds:
            rounds += 1
            batch: List[Notification] = []
            for seq in sorted(self._unacked):
                attempt = self._attempts.get(seq, 0)
                if attempt >= self.retry.max_attempts:
                    self.dead_letters.push(
                        self._outbox[seq], "delivery attempts exhausted", attempt
                    )
                    self._unacked.discard(seq)
                    continue
                self._attempts[seq] = attempt + 1
                if attempt:
                    self.backoff_hours += self.retry.backoff(attempt)
                batch.append(self._outbox[seq])
            self.transmissions += len(batch)
            for item in self.channel.transmit(batch):
                if item.seq in self._seen:
                    self.duplicates_dropped += 1
                    continue
                self._seen.add(item.seq)
                self._delivered.append(item)
                self._unacked.discard(item.seq)
        return len(self._delivered) - before

    def redrive(self) -> int:
        """Re-queue every dead letter (the fault cleared); returns count."""
        entries = self.dead_letters.drain()
        for entry in entries:
            self._attempts[entry.item.seq] = 0
            self._unacked.add(entry.item.seq)
        return len(entries)

    def drain_delivered(self) -> List[Notification]:
        out, self._delivered = self._delivered, []
        return out

    @property
    def outstanding(self) -> int:
        return len(self._unacked)

    @property
    def delivered_total(self) -> int:
        return len(self._seen)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Subscription:
    """One registered standing query."""

    sub_id: str
    plan: QueryPlan
    registered_at: float
    anchors: Optional[FrozenSet[Tuple[str, str]]]

    @property
    def broad(self) -> bool:
        return self.anchors is None


class SubscriptionEngine:
    """Registry + incremental evaluator for standing queries.

    ``journal`` (optional) persists registrations; ``delivery_plan``
    (optional) injects seeded faults into the notification channel.
    All mutation and evaluation serializes on one lock — the engine is
    fed from the derivation stage's single-threaded reindex loop, and the
    lock keeps facade calls (subscribe / report) safe alongside it.
    """

    def __init__(
        self,
        journal: Optional[Any] = None,
        delivery_plan: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.journal = journal
        self.clock = clock
        self.deliverer = NotificationDeliverer(delivery_plan, retry)
        self._subs: Dict[str, Subscription] = {}
        #: (field, token) -> ids of subscriptions anchored on that pair.
        self._anchor_index: Dict[Tuple[str, str], Set[str]] = {}
        #: Un-anchorable subscriptions, evaluated on every event.
        self._broad: Set[str] = set()
        #: sub id -> entities currently in its result set.
        self._matching: Dict[str, Set[str]] = {}
        #: entity -> sub ids currently matching it (exit detection).
        self._entity_subs: Dict[str, Set[str]] = {}
        self._lock = threading.Lock()
        self._next_sub = 0
        self._next_seq = 0
        self.events_seen = 0
        self.candidates_evaluated = 0
        self.notifications_emitted = 0

    # -- registration ------------------------------------------------------

    def subscribe(
        self,
        query: Union[str, QueryPlan],
        sub_id: Optional[str] = None,
        now: Optional[float] = None,
    ) -> str:
        """Register a standing query; returns its id.

        Journaled (when a journal is attached) as a
        ``subscription_registered`` event on ``sub:<id>``, inside the
        same durability envelope as every other event — so a recovered
        platform still knows its watchers.
        """
        plan = compile_query(query)
        time = self._now(now)
        with self._lock:
            if sub_id is None:
                self._next_sub += 1
                sub_id = f"sub-{self._next_sub:06d}"
            if sub_id in self._subs:
                raise ValueError(f"subscription id {sub_id!r} already registered")
            if self.journal is not None:
                self.journal.append(
                    subscription_entity_id(sub_id),
                    time,
                    EventKind.SUBSCRIPTION_REGISTERED,
                    {
                        "subscription": {
                            "query": plan.source or plan.key,
                            "registered_at": time,
                        }
                    },
                )
            self._register(sub_id, plan, time)
        return sub_id

    def unsubscribe(self, sub_id: str, now: Optional[float] = None) -> bool:
        time = self._now(now)
        with self._lock:
            sub = self._subs.pop(sub_id, None)
            if sub is None:
                return False
            if self.journal is not None:
                self.journal.append(
                    subscription_entity_id(sub_id),
                    time,
                    EventKind.SUBSCRIPTION_CANCELLED,
                    {},
                )
            if sub.anchors is None:
                self._broad.discard(sub_id)
            else:
                for pair in sub.anchors:
                    ids = self._anchor_index.get(pair)
                    if ids is not None:
                        ids.discard(sub_id)
                        if not ids:
                            del self._anchor_index[pair]
            for entity_id in self._matching.pop(sub_id, ()):
                ids = self._entity_subs.get(entity_id)
                if ids is not None:
                    ids.discard(sub_id)
                    if not ids:
                        del self._entity_subs[entity_id]
            return True

    def _register(self, sub_id: str, plan: QueryPlan, time: float) -> None:
        anchors = anchor_tokens(plan.node)
        sub = Subscription(sub_id, plan, time, anchors)
        self._subs[sub_id] = sub
        self._matching[sub_id] = set()
        if anchors is None:
            self._broad.add(sub_id)
        else:
            for pair in anchors:
                self._anchor_index.setdefault(pair, set()).add(sub_id)

    def restore(self, journal: Optional[Any] = None) -> int:
        """Re-register every live journaled subscription (recovery path).

        Reads ``sub:*`` entities from the journal — WAL replay and
        compaction folds both preserve their reconstructed state — and
        registers the survivors without re-journaling.  Matched-entity
        sets start empty; call :meth:`resync` against the rebuilt index
        to re-derive them without emitting notifications.
        """
        journal = journal if journal is not None else self.journal
        if journal is None:
            raise ValueError("restore requires a journal")
        count = 0
        with self._lock:
            for entity_id in list(journal.entity_ids()):
                if not entity_id.startswith("sub:"):
                    continue
                meta = journal.reconstruct(entity_id).get("meta", {})
                info = meta.get("subscription")
                if not info or meta.get("cancelled"):
                    continue
                sub_id = entity_id[len("sub:"):]
                if sub_id in self._subs:
                    continue
                registered_at = float(info.get("registered_at", 0.0))
                self._register(sub_id, compile_query(info["query"]), registered_at)
                # Keep auto-generated ids from colliding with restored ones.
                if sub_id.startswith("sub-"):
                    try:
                        self._next_sub = max(self._next_sub, int(sub_id[4:]))
                    except ValueError:
                        pass
                count += 1
        return count

    def resync(self, items: Iterable[Tuple[str, Dict[str, List[Any]]]]) -> int:
        """Rebuild matched-entity sets from current documents, silently.

        Used after :meth:`restore`: the result sets are re-derived from
        the (also recovered) index instead of replaying history, so the
        next real event produces exactly the transitions a never-crashed
        engine would have produced.  Returns the number of (sub, entity)
        matches recorded.
        """
        recorded = 0
        with self._lock:
            for sub_id in self._subs:
                self._matching[sub_id] = set()
            self._entity_subs.clear()
            for entity_id, doc in items:
                if doc is None:
                    continue
                for sub_id in self._candidate_ids(entity_id, doc):
                    sub = self._subs.get(sub_id)
                    if sub is not None and sub.plan.matches_doc(doc):
                        self._matching[sub_id].add(entity_id)
                        self._entity_subs.setdefault(entity_id, set()).add(sub_id)
                        recorded += 1
        return recorded

    # -- incremental evaluation --------------------------------------------

    def _candidate_ids(self, entity_id: str, doc: Optional[Dict[str, List[Any]]]) -> Set[str]:
        candidates = set(self._broad)
        if doc is not None:
            anchor_index = self._anchor_index
            if anchor_index:
                for pair in _doc_token_pairs(doc):
                    hit = anchor_index.get(pair)
                    if hit:
                        candidates |= hit
        current = self._entity_subs.get(entity_id)
        if current:
            candidates |= current
        return candidates

    def on_document(
        self,
        entity_id: str,
        doc: Optional[Dict[str, List[Any]]],
        now: Optional[float] = None,
    ) -> int:
        """Evaluate one document change (``doc=None`` = deletion).

        Only anchored candidates, broad subscriptions, and current
        matchers of this entity are evaluated; emits ``entered`` /
        ``exited`` notifications for result-set transitions and returns
        how many were emitted.
        """
        time = self._now(now)
        with self._lock:
            self.events_seen += 1
            if not self._subs:
                return 0
            return self._evaluate_locked(entity_id, doc, time)

    def on_documents(
        self,
        updates: Iterable[Tuple[str, Optional[Dict[str, List[Any]]]]],
        now: Optional[float] = None,
    ) -> int:
        """Evaluate a batch of document changes under one lock hold.

        The batch is entity-coalesced first — last write wins, evaluated
        in last-occurrence order — and then each surviving (entity, doc)
        runs through exactly the per-event transition logic, so the
        emitted ``entered`` / ``exited`` stream (sequence numbers
        included) is identical to calling :meth:`on_document` once per
        coalesced entry.  The derivation stage's dirty set already holds
        each entity at most once per advance, so there coalescing is the
        identity and the batch path is bit-identical to the per-event
        reference; the win is one lock acquisition and one timestamp per
        batch instead of per entity.  Returns notifications emitted.
        """
        time = self._now(now)
        last: Dict[str, Optional[Dict[str, List[Any]]]] = {}
        for entity_id, doc in updates:
            # pop-then-set keeps last-occurrence order, mirroring
            # SearchIndex.put_many's within-batch LWW semantics.
            last.pop(entity_id, None)
            last[entity_id] = doc
        if not last:
            return 0
        with self._lock:
            emitted = 0
            for entity_id, doc in last.items():
                self.events_seen += 1
                if not self._subs:
                    continue
                emitted += self._evaluate_locked(entity_id, doc, time)
            return emitted

    def _evaluate_locked(
        self, entity_id: str, doc: Optional[Dict[str, List[Any]]], time: float
    ) -> int:
        """The transition check for one (entity, doc); lock must be held."""
        emitted = 0
        for sub_id in sorted(self._candidate_ids(entity_id, doc)):
            sub = self._subs.get(sub_id)
            if sub is None:
                continue
            self.candidates_evaluated += 1
            matching = self._matching[sub_id]
            now_matches = doc is not None and sub.plan.matches_doc(doc)
            was_matching = entity_id in matching
            if now_matches == was_matching:
                continue
            if now_matches:
                matching.add(entity_id)
                self._entity_subs.setdefault(entity_id, set()).add(sub_id)
                transition = "entered"
            else:
                matching.discard(entity_id)
                ids = self._entity_subs.get(entity_id)
                if ids is not None:
                    ids.discard(sub_id)
                    if not ids:
                        del self._entity_subs[entity_id]
                transition = "exited"
            self.deliverer.offer(
                Notification(self._next_seq, sub_id, entity_id, transition, time, sub.plan.key)
            )
            self._next_seq += 1
            self.notifications_emitted += 1
            emitted += 1
        return emitted

    # -- delivery ----------------------------------------------------------

    def pump_delivery(self, max_rounds: int = 64) -> int:
        return self.deliverer.pump(max_rounds=max_rounds)

    def drain_notifications(self) -> List[Dict[str, Any]]:
        """Deliver whatever is pending, then hand over the arrivals."""
        self.deliverer.pump()
        return [n.as_dict() for n in self.deliverer.drain_delivered()]

    # -- introspection ------------------------------------------------------

    def matching_entities(self, sub_id: str) -> Set[str]:
        with self._lock:
            return set(self._matching.get(sub_id, ()))

    def subscription(self, sub_id: str) -> Optional[Subscription]:
        return self._subs.get(sub_id)

    def __len__(self) -> int:
        return len(self._subs)

    def report(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "registered": len(self._subs),
                "broad": len(self._broad),
                "anchor_keys": len(self._anchor_index),
                "events_seen": self.events_seen,
                "candidates_evaluated": self.candidates_evaluated,
                "notifications_emitted": self.notifications_emitted,
                "notifications_delivered": self.deliverer.delivered_total,
                "delivery_outstanding": self.deliverer.outstanding,
                "transmissions": self.deliverer.transmissions,
                "dead_letters": len(self.deliverer.dead_letters),
            }

    def _now(self, now: Optional[float]) -> float:
        if now is not None:
            return now
        if self.clock is not None:
            return self.clock()
        return 0.0
