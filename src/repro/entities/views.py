"""Frozen dataclass views over reconstructed entity dicts.

Constructed with :meth:`HostView.from_view` (etc.) from the read side's
output; every field is a stable, documented part of the public data model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "SoftwareInfo",
    "VulnerabilityInfo",
    "LocationInfo",
    "AutonomousSystemInfo",
    "ServiceView",
    "HostView",
    "CertificateView",
    "WebPropertyView",
]


@dataclass(frozen=True, slots=True)
class SoftwareInfo:
    """Fingerprinted software identity of one service."""

    vendor: str
    product: str
    version: Optional[str]
    cpe: str

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SoftwareInfo":
        return cls(
            vendor=data.get("vendor", ""),
            product=data.get("product", ""),
            version=data.get("version"),
            cpe=data.get("cpe", ""),
        )


@dataclass(frozen=True, slots=True)
class VulnerabilityInfo:
    """One CVE affecting a fingerprinted service."""

    cve_id: str
    cvss: float
    known_exploited: bool
    summary: str

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "VulnerabilityInfo":
        return cls(
            cve_id=data.get("cve_id", ""),
            cvss=float(data.get("cvss", 0.0)),
            known_exploited=bool(data.get("kev", False)),
            summary=data.get("summary", ""),
        )


@dataclass(frozen=True, slots=True)
class LocationInfo:
    country: str
    region: str
    city: str

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LocationInfo":
        return cls(
            country=data.get("country", ""),
            region=data.get("region", ""),
            city=data.get("city", ""),
        )


@dataclass(frozen=True, slots=True)
class AutonomousSystemInfo:
    asn: int
    name: str
    organization: str
    cidr: str

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AutonomousSystemInfo":
        return cls(
            asn=int(data.get("asn", 0)),
            name=data.get("as_name", ""),
            organization=data.get("organization", ""),
            cidr=data.get("cidr", ""),
        )


@dataclass(frozen=True, slots=True)
class ServiceView:
    """One service on a host, as served to users."""

    port: int
    transport: str
    service_name: Optional[str]
    protocol: Optional[str]
    first_seen: Optional[float]
    last_seen: Optional[float]
    pending_removal: bool
    record: Mapping[str, Any]
    software: Optional[SoftwareInfo]
    vulnerabilities: Tuple[VulnerabilityInfo, ...]

    @classmethod
    def from_dict(cls, key: str, service: Mapping[str, Any]) -> "ServiceView":
        port_text, _, transport = key.partition("/")
        software = service.get("software")
        return cls(
            port=int(port_text),
            transport=transport,
            service_name=service.get("service_name"),
            protocol=service.get("protocol"),
            first_seen=service.get("first_seen"),
            last_seen=service.get("last_seen"),
            pending_removal=service.get("pending_removal_since") is not None,
            record=dict(service.get("record", {})),
            software=SoftwareInfo.from_dict(software) if software else None,
            vulnerabilities=tuple(
                VulnerabilityInfo.from_dict(v) for v in service.get("vulnerabilities", ())
            ),
        )

    @property
    def is_tls(self) -> bool:
        return "tls.certificate_sha256" in self.record

    @property
    def certificate_sha256(self) -> Optional[str]:
        return self.record.get("tls.certificate_sha256")


@dataclass(frozen=True, slots=True)
class HostView:
    """One IP-addressed host: services plus derived context."""

    entity_id: str
    ip: str
    at: Optional[float]
    services: Tuple[ServiceView, ...]
    location: Optional[LocationInfo]
    autonomous_system: Optional[AutonomousSystemInfo]
    labels: Tuple[str, ...]
    cve_ids: Tuple[str, ...]
    device_types: Tuple[str, ...]

    @classmethod
    def from_view(cls, view: Mapping[str, Any]) -> "HostView":
        entity_id = view["entity_id"]
        derived = view.get("derived", {})
        location = derived.get("location")
        asys = derived.get("autonomous_system")
        return cls(
            entity_id=entity_id,
            ip=entity_id.split(":", 1)[1] if ":" in entity_id else entity_id,
            at=view.get("at"),
            services=tuple(
                ServiceView.from_dict(key, service)
                for key, service in sorted(view.get("services", {}).items())
            ),
            location=LocationInfo.from_dict(location) if location else None,
            autonomous_system=AutonomousSystemInfo.from_dict(asys) if asys else None,
            labels=tuple(derived.get("labels", ())),
            cve_ids=tuple(derived.get("cve_ids", ())),
            device_types=tuple(derived.get("device_types", ())),
        )

    @property
    def service_count(self) -> int:
        return len(self.services)

    def service_on(self, port: int, transport: str = "tcp") -> Optional[ServiceView]:
        for service in self.services:
            if service.port == port and service.transport == transport:
                return service
        return None

    @property
    def open_ports(self) -> Tuple[int, ...]:
        return tuple(s.port for s in self.services)

    @property
    def has_known_exploited_vulnerability(self) -> bool:
        return any(v.known_exploited for s in self.services for v in s.vulnerabilities)


@dataclass(frozen=True, slots=True)
class CertificateView:
    """One certificate entity as journaled by the certificate pipeline."""

    sha256: str
    subject_cn: str
    names: Tuple[str, ...]
    issuer_cn: str
    not_before: float
    not_after: float
    self_signed: bool
    valid_in: Tuple[str, ...]
    validation_errors: Tuple[str, ...]
    revoked: bool
    lint_findings: Tuple[str, ...]

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "CertificateView":
        meta = state.get("meta", {})
        validation = meta.get("validation", {})
        return cls(
            sha256=meta.get("sha256", ""),
            subject_cn=meta.get("subject_cn", ""),
            names=tuple(meta.get("subject_names", ())),
            issuer_cn=meta.get("issuer_cn", ""),
            not_before=float(meta.get("not_before", 0.0)),
            not_after=float(meta.get("not_after", 0.0)),
            self_signed=bool(meta.get("self_signed", False)),
            valid_in=tuple(validation.get("valid_in", ())),
            validation_errors=tuple(validation.get("errors", ())),
            revoked=bool(meta.get("revoked", False)),
            lint_findings=tuple(meta.get("lint", ())),
        )

    @property
    def trusted(self) -> bool:
        return bool(self.valid_in) and not self.revoked


@dataclass(frozen=True, slots=True)
class WebPropertyView:
    """One name-addressed web property."""

    entity_id: str
    name: str
    services: Tuple[ServiceView, ...]

    @classmethod
    def from_view(cls, view: Mapping[str, Any]) -> "WebPropertyView":
        entity_id = view["entity_id"]
        return cls(
            entity_id=entity_id,
            name=entity_id.split(":", 1)[1] if ":" in entity_id else entity_id,
            services=tuple(
                ServiceView.from_dict(key, service)
                for key, service in sorted(view.get("services", {}).items())
            ),
        )

    @property
    def page_title(self) -> Optional[str]:
        for service in self.services:
            title = service.record.get("http.html_title")
            if title:
                return title
        return None
