"""Typed entity views: the stable public shapes of the Internet Map.

The pipeline stores entities as plain dicts (cheap to journal, snapshot,
and flatten); downstream code, however, deserves typed objects.  This
package wraps reconstructed views in frozen dataclasses with the fields
the paper's data model exposes — hosts with services and derived context,
web properties, and certificates.
"""

from repro.entities.schema import FIELD_CATALOG, FieldSpec, validate_record
from repro.entities.views import (
    AutonomousSystemInfo,
    CertificateView,
    HostView,
    LocationInfo,
    ServiceView,
    SoftwareInfo,
    VulnerabilityInfo,
    WebPropertyView,
)

__all__ = [
    "FIELD_CATALOG",
    "FieldSpec",
    "validate_record",
    "HostView",
    "ServiceView",
    "SoftwareInfo",
    "VulnerabilityInfo",
    "LocationInfo",
    "AutonomousSystemInfo",
    "CertificateView",
    "WebPropertyView",
]
