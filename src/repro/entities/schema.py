"""The dataset field schema: every record field scanners may emit.

Censys publishes dataset schemas so downstream users can rely on field
names and types; this catalog is that contract for the reproduction.  It
doubles as a consistency check: the test suite asserts that every
protocol scanner only emits cataloged fields with the cataloged types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Type

__all__ = ["FieldSpec", "FIELD_CATALOG", "validate_record"]


@dataclass(frozen=True, slots=True)
class FieldSpec:
    """One documented record field."""

    name: str
    type: type
    protocol: str
    description: str


FIELD_CATALOG: Dict[str, FieldSpec] = {
    "amqp.product": FieldSpec("amqp.product", str, "AMQP", "AMQP scanner: product."),
    "amqp.version": FieldSpec("amqp.version", str, "AMQP", "Self-reported AMQP software version."),
    "atg.firmware": FieldSpec("atg.firmware", str, "ATG", "Firmware revision reported by the ATG identity handshake."),
    "atg.model": FieldSpec("atg.model", str, "ATG", "Device model reported by the ATG identity handshake."),
    "atg.vendor": FieldSpec("atg.vendor", str, "ATG", "Device vendor reported by the ATG identity handshake."),
    "bacnet.firmware": FieldSpec("bacnet.firmware", str, "BACNET", "Firmware revision reported by the BACNET identity handshake."),
    "bacnet.firmware_revision": FieldSpec("bacnet.firmware_revision", str, "BACNET", "BACNET scanner: firmware revision."),
    "bacnet.model": FieldSpec("bacnet.model", str, "BACNET", "Device model reported by the BACNET identity handshake."),
    "bacnet.object_name": FieldSpec("bacnet.object_name", str, "BACNET", "BACNET scanner: object name."),
    "bacnet.vendor": FieldSpec("bacnet.vendor", str, "BACNET", "Device vendor reported by the BACNET identity handshake."),
    "bacnet.vendor_name": FieldSpec("bacnet.vendor_name", str, "BACNET", "BACNET scanner: vendor name."),
    "cassandra.cql_version": FieldSpec("cassandra.cql_version", str, "CASSANDRA", "CASSANDRA scanner: cql version."),
    "cassandra.release_version": FieldSpec("cassandra.release_version", str, "CASSANDRA", "CASSANDRA scanner: release version."),
    "cimon_plc.firmware": FieldSpec("cimon_plc.firmware", str, "CIMON_PLC", "Firmware revision reported by the CIMON_PLC identity handshake."),
    "cimon_plc.model": FieldSpec("cimon_plc.model", str, "CIMON_PLC", "Device model reported by the CIMON_PLC identity handshake."),
    "cimon_plc.vendor": FieldSpec("cimon_plc.vendor", str, "CIMON_PLC", "Device vendor reported by the CIMON_PLC identity handshake."),
    "cmore.firmware": FieldSpec("cmore.firmware", str, "CMORE", "Firmware revision reported by the CMORE identity handshake."),
    "cmore.model": FieldSpec("cmore.model", str, "CMORE", "Device model reported by the CMORE identity handshake."),
    "cmore.vendor": FieldSpec("cmore.vendor", str, "CMORE", "Device vendor reported by the CMORE identity handshake."),
    "codesys.firmware": FieldSpec("codesys.firmware", str, "CODESYS", "Firmware revision reported by the CODESYS identity handshake."),
    "codesys.model": FieldSpec("codesys.model", str, "CODESYS", "Device model reported by the CODESYS identity handshake."),
    "codesys.vendor": FieldSpec("codesys.vendor", str, "CODESYS", "Device vendor reported by the CODESYS identity handshake."),
    "digi.firmware": FieldSpec("digi.firmware", str, "DIGI", "Firmware revision reported by the DIGI identity handshake."),
    "digi.model": FieldSpec("digi.model", str, "DIGI", "Device model reported by the DIGI identity handshake."),
    "digi.vendor": FieldSpec("digi.vendor", str, "DIGI", "Device vendor reported by the DIGI identity handshake."),
    "dnp3.firmware": FieldSpec("dnp3.firmware", str, "DNP3", "Firmware revision reported by the DNP3 identity handshake."),
    "dnp3.model": FieldSpec("dnp3.model", str, "DNP3", "Device model reported by the DNP3 identity handshake."),
    "dnp3.source_address": FieldSpec("dnp3.source_address", int, "DNP3", "DNP3 scanner: source address."),
    "dnp3.vendor": FieldSpec("dnp3.vendor", str, "DNP3", "Device vendor reported by the DNP3 identity handshake."),
    "dns.rcode": FieldSpec("dns.rcode", str, "DNS", "DNS scanner: rcode."),
    "dns.recursive": FieldSpec("dns.recursive", bool, "DNS", "DNS scanner: recursive."),
    "dns.version_bind": FieldSpec("dns.version_bind", str, "DNS", "version.bind TXT response, when the server discloses it."),
    "docker.containers": FieldSpec("docker.containers", int, "DOCKER", "DOCKER scanner: containers."),
    "docker.unauthenticated": FieldSpec("docker.unauthenticated", bool, "DOCKER", "DOCKER scanner: unauthenticated."),
    "docker.version": FieldSpec("docker.version", str, "DOCKER", "Self-reported DOCKER software version."),
    "eip.firmware": FieldSpec("eip.firmware", str, "EIP", "Firmware revision reported by the EIP identity handshake."),
    "eip.model": FieldSpec("eip.model", str, "EIP", "Device model reported by the EIP identity handshake."),
    "eip.vendor": FieldSpec("eip.vendor", str, "EIP", "Device vendor reported by the EIP identity handshake."),
    "elasticsearch.cluster_name": FieldSpec("elasticsearch.cluster_name", str, "ELASTICSEARCH", "ELASTICSEARCH scanner: cluster name."),
    "elasticsearch.open_access": FieldSpec("elasticsearch.open_access", bool, "ELASTICSEARCH", "ELASTICSEARCH scanner: open access."),
    "elasticsearch.version": FieldSpec("elasticsearch.version", str, "ELASTICSEARCH", "Self-reported ELASTICSEARCH software version."),
    "fins.firmware": FieldSpec("fins.firmware", str, "FINS", "Firmware revision reported by the FINS identity handshake."),
    "fins.model": FieldSpec("fins.model", str, "FINS", "Device model reported by the FINS identity handshake."),
    "fins.vendor": FieldSpec("fins.vendor", str, "FINS", "Device vendor reported by the FINS identity handshake."),
    "fox.app_version": FieldSpec("fox.app_version", str, "FOX", "FOX scanner: app version."),
    "fox.firmware": FieldSpec("fox.firmware", str, "FOX", "Firmware revision reported by the FOX identity handshake."),
    "fox.host_name": FieldSpec("fox.host_name", str, "FOX", "FOX scanner: host name."),
    "fox.model": FieldSpec("fox.model", str, "FOX", "Device model reported by the FOX identity handshake."),
    "fox.vendor": FieldSpec("fox.vendor", str, "FOX", "Device vendor reported by the FOX identity handshake."),
    "fox.version": FieldSpec("fox.version", str, "FOX", "Self-reported FOX software version."),
    "ftp.anonymous": FieldSpec("ftp.anonymous", bool, "FTP", "FTP scanner: anonymous."),
    "ftp.banner": FieldSpec("ftp.banner", str, "FTP", "Raw FTP greeting/banner line."),
    "ge_srtp.firmware": FieldSpec("ge_srtp.firmware", str, "GE_SRTP", "Firmware revision reported by the GE_SRTP identity handshake."),
    "ge_srtp.model": FieldSpec("ge_srtp.model", str, "GE_SRTP", "Device model reported by the GE_SRTP identity handshake."),
    "ge_srtp.vendor": FieldSpec("ge_srtp.vendor", str, "GE_SRTP", "Device vendor reported by the GE_SRTP identity handshake."),
    "hart.firmware": FieldSpec("hart.firmware", str, "HART", "Firmware revision reported by the HART identity handshake."),
    "hart.model": FieldSpec("hart.model", str, "HART", "Device model reported by the HART identity handshake."),
    "hart.vendor": FieldSpec("hart.vendor", str, "HART", "Device vendor reported by the HART identity handshake."),
    "http.body_keywords": FieldSpec("http.body_keywords", tuple, "HTTP", "Notable keywords observed in the page body."),
    "http.favicon_mmh3": FieldSpec("http.favicon_mmh3", int, "HTTP", "mmh3-style hash of the served favicon (fingerprint pivot)."),
    "http.html_title": FieldSpec("http.html_title", str, "HTTP", "HTML <title> of the served page."),
    "http.is_c2": FieldSpec("http.is_c2", bool, "HTTP", "Heuristic marker: response profile matches C2 panel behaviour."),
    "http.redirect_location": FieldSpec("http.redirect_location", str, "HTTP", "HTTP scanner: redirect location."),
    "http.server": FieldSpec("http.server", str, "HTTP", "HTTP scanner: server."),
    "http.status": FieldSpec("http.status", int, "HTTP", "HTTP scanner: status."),
    "http.virtual_host": FieldSpec("http.virtual_host", str, "HTTP", "Name that selected this page via SNI/Host header."),
    "http.www_authenticate": FieldSpec("http.www_authenticate", str, "HTTP", "HTTP scanner: www authenticate."),
    "iec60870.firmware": FieldSpec("iec60870.firmware", str, "IEC60870", "Firmware revision reported by the IEC60870 identity handshake."),
    "iec60870.model": FieldSpec("iec60870.model", str, "IEC60870", "Device model reported by the IEC60870 identity handshake."),
    "iec60870.vendor": FieldSpec("iec60870.vendor", str, "IEC60870", "Device vendor reported by the IEC60870 identity handshake."),
    "imap.banner": FieldSpec("imap.banner", str, "IMAP", "Raw IMAP greeting/banner line."),
    "imap.capabilities": FieldSpec("imap.capabilities", tuple, "IMAP", "Capabilities advertised by the IMAP server."),
    "ipp.printer_make_and_model": FieldSpec("ipp.printer_make_and_model", str, "IPP", "IPP scanner: printer make and model."),
    "ipp.printer_state": FieldSpec("ipp.printer_state", str, "IPP", "IPP scanner: printer state."),
    "jetdirect.pjl_id": FieldSpec("jetdirect.pjl_id", str, "JETDIRECT", "JETDIRECT scanner: pjl id."),
    "kubernetes.anonymous_auth": FieldSpec("kubernetes.anonymous_auth", bool, "KUBERNETES", "KUBERNETES scanner: anonymous auth."),
    "kubernetes.version": FieldSpec("kubernetes.version", str, "KUBERNETES", "Self-reported KUBERNETES software version."),
    "ldap.naming_contexts": FieldSpec("ldap.naming_contexts", tuple, "LDAP", "LDAP scanner: naming contexts."),
    "ldap.result_code": FieldSpec("ldap.result_code", int, "LDAP", "LDAP scanner: result code."),
    "lpd.queue_state": FieldSpec("lpd.queue_state", str, "LPD", "LPD scanner: queue state."),
    "memcached.curr_items": FieldSpec("memcached.curr_items", int, "MEMCACHED", "MEMCACHED scanner: curr items."),
    "memcached.version": FieldSpec("memcached.version", str, "MEMCACHED", "Self-reported MEMCACHED software version."),
    "modbus.firmware": FieldSpec("modbus.firmware", str, "MODBUS", "Firmware revision reported by the MODBUS identity handshake."),
    "modbus.model": FieldSpec("modbus.model", str, "MODBUS", "Device model reported by the MODBUS identity handshake."),
    "modbus.product_code": FieldSpec("modbus.product_code", str, "MODBUS", "MODBUS scanner: product code."),
    "modbus.revision": FieldSpec("modbus.revision", str, "MODBUS", "MODBUS scanner: revision."),
    "modbus.vendor": FieldSpec("modbus.vendor", str, "MODBUS", "Device vendor reported by the MODBUS identity handshake."),
    "modbus.vendor_name": FieldSpec("modbus.vendor_name", str, "MODBUS", "MODBUS scanner: vendor name."),
    "mongodb.max_wire_version": FieldSpec("mongodb.max_wire_version", int, "MONGODB", "MONGODB scanner: max wire version."),
    "mongodb.version": FieldSpec("mongodb.version", str, "MONGODB", "Self-reported MONGODB software version."),
    "mqtt.anonymous_allowed": FieldSpec("mqtt.anonymous_allowed", bool, "MQTT", "MQTT scanner: anonymous allowed."),
    "mqtt.connect_return_code": FieldSpec("mqtt.connect_return_code", int, "MQTT", "MQTT scanner: connect return code."),
    "mysql.auth_plugin": FieldSpec("mysql.auth_plugin", str, "MYSQL", "MYSQL scanner: auth plugin."),
    "mysql.error_code": FieldSpec("mysql.error_code", int, "MYSQL", "MYSQL scanner: error code."),
    "mysql.server_version": FieldSpec("mysql.server_version", str, "MYSQL", "MYSQL scanner: server version."),
    "ntp.monlist_open": FieldSpec("ntp.monlist_open", bool, "NTP", "True when the amplification-prone monlist query answers."),
    "ntp.stratum": FieldSpec("ntp.stratum", int, "NTP", "NTP scanner: stratum."),
    "ntp.version": FieldSpec("ntp.version", int, "NTP", "Self-reported NTP software version."),
    "opc_ua.firmware": FieldSpec("opc_ua.firmware", str, "OPC_UA", "Firmware revision reported by the OPC_UA identity handshake."),
    "opc_ua.model": FieldSpec("opc_ua.model", str, "OPC_UA", "Device model reported by the OPC_UA identity handshake."),
    "opc_ua.vendor": FieldSpec("opc_ua.vendor", str, "OPC_UA", "Device vendor reported by the OPC_UA identity handshake."),
    "pcom.firmware": FieldSpec("pcom.firmware", str, "PCOM", "Firmware revision reported by the PCOM identity handshake."),
    "pcom.model": FieldSpec("pcom.model", str, "PCOM", "Device model reported by the PCOM identity handshake."),
    "pcom.vendor": FieldSpec("pcom.vendor", str, "PCOM", "Device vendor reported by the PCOM identity handshake."),
    "pcworx.firmware": FieldSpec("pcworx.firmware", str, "PCWORX", "Firmware revision reported by the PCWORX identity handshake."),
    "pcworx.model": FieldSpec("pcworx.model", str, "PCWORX", "Device model reported by the PCWORX identity handshake."),
    "pcworx.vendor": FieldSpec("pcworx.vendor", str, "PCWORX", "Device vendor reported by the PCWORX identity handshake."),
    "pop3.banner": FieldSpec("pop3.banner", str, "POP3", "Raw POP3 greeting/banner line."),
    "pop3.capabilities": FieldSpec("pop3.capabilities", tuple, "POP3", "Capabilities advertised by the POP3 server."),
    "postgres.auth_method": FieldSpec("postgres.auth_method", str, "POSTGRES", "POSTGRES scanner: auth method."),
    "postgres.ssl": FieldSpec("postgres.ssl", bool, "POSTGRES", "POSTGRES scanner: ssl."),
    "proconos.firmware": FieldSpec("proconos.firmware", str, "PROCONOS", "Firmware revision reported by the PROCONOS identity handshake."),
    "proconos.model": FieldSpec("proconos.model", str, "PROCONOS", "Device model reported by the PROCONOS identity handshake."),
    "proconos.vendor": FieldSpec("proconos.vendor", str, "PROCONOS", "Device vendor reported by the PROCONOS identity handshake."),
    "rdp.computer_name": FieldSpec("rdp.computer_name", str, "RDP", "RDP scanner: computer name."),
    "rdp.os_version": FieldSpec("rdp.os_version", str, "RDP", "RDP scanner: os version."),
    "rdp.security_protocols": FieldSpec("rdp.security_protocols", tuple, "RDP", "Security protocols offered in the connection confirm."),
    "redis.auth_required": FieldSpec("redis.auth_required", bool, "REDIS", "REDIS scanner: auth required."),
    "redis.mode": FieldSpec("redis.mode", str, "REDIS", "REDIS scanner: mode."),
    "redis.version": FieldSpec("redis.version", str, "REDIS", "Self-reported REDIS software version."),
    "redlion.firmware": FieldSpec("redlion.firmware", str, "REDLION", "Firmware revision reported by the REDLION identity handshake."),
    "redlion.model": FieldSpec("redlion.model", str, "REDLION", "Device model reported by the REDLION identity handshake."),
    "redlion.vendor": FieldSpec("redlion.vendor", str, "REDLION", "Device vendor reported by the REDLION identity handshake."),
    "rlogin.prompt": FieldSpec("rlogin.prompt", str, "RLOGIN", "RLOGIN scanner: prompt."),
    "rsync.banner": FieldSpec("rsync.banner", str, "RSYNC", "Raw RSYNC greeting/banner line."),
    "rsync.modules": FieldSpec("rsync.modules", tuple, "RSYNC", "RSYNC scanner: modules."),
    "rsync.open_modules": FieldSpec("rsync.open_modules", bool, "RSYNC", "RSYNC scanner: open modules."),
    "rtsp.open_stream": FieldSpec("rtsp.open_stream", bool, "RTSP", "RTSP scanner: open stream."),
    "rtsp.server": FieldSpec("rtsp.server", str, "RTSP", "RTSP scanner: server."),
    "s7.firmware": FieldSpec("s7.firmware", str, "S7", "Firmware revision reported by the S7 identity handshake."),
    "s7.model": FieldSpec("s7.model", str, "S7", "Device model reported by the S7 identity handshake."),
    "s7.module_type": FieldSpec("s7.module_type", str, "S7", "S7 scanner: module type."),
    "s7.serial_number": FieldSpec("s7.serial_number", str, "S7", "Module serial number from the SZL identity read."),
    "s7.vendor": FieldSpec("s7.vendor", str, "S7", "Device vendor reported by the S7 identity handshake."),
    "sip.status": FieldSpec("sip.status", str, "SIP", "SIP scanner: status."),
    "sip.user_agent": FieldSpec("sip.user_agent", str, "SIP", "SIP scanner: user agent."),
    "smb.dialect": FieldSpec("smb.dialect", str, "SMB", "SMB scanner: dialect."),
    "smb.netbios_name": FieldSpec("smb.netbios_name", str, "SMB", "SMB scanner: netbios name."),
    "smb.signing_required": FieldSpec("smb.signing_required", bool, "SMB", "SMB scanner: signing required."),
    "smtp.banner": FieldSpec("smtp.banner", str, "SMTP", "Raw SMTP greeting/banner line."),
    "smtp.ehlo_extensions": FieldSpec("smtp.ehlo_extensions", tuple, "SMTP", "SMTP scanner: ehlo extensions."),
    "smtp.starttls": FieldSpec("smtp.starttls", bool, "SMTP", "SMTP scanner: starttls."),
    "snmp.community": FieldSpec("snmp.community", str, "SNMP", "SNMP scanner: community."),
    "snmp.sysdescr": FieldSpec("snmp.sysdescr", str, "SNMP", "sysDescr.0 returned for the public community."),
    "socks5.auth_method": FieldSpec("socks5.auth_method", int, "SOCKS5", "SOCKS5 scanner: auth method."),
    "socks5.open_proxy": FieldSpec("socks5.open_proxy", bool, "SOCKS5", "True when the proxy accepts the no-authentication method."),
    "ssh.banner": FieldSpec("ssh.banner", str, "SSH", "Raw SSH greeting/banner line."),
    "ssh.host_key_sha256": FieldSpec("ssh.host_key_sha256", str, "SSH", "SHA-256 fingerprint of the server host key (threat-hunting pivot)."),
    "ssh.host_key_type": FieldSpec("ssh.host_key_type", str, "SSH", "SSH scanner: host key type."),
    "ssh.kex_algorithms": FieldSpec("ssh.kex_algorithms", tuple, "SSH", "Key-exchange algorithms offered in KEXINIT."),
    "telnet.banner": FieldSpec("telnet.banner", str, "TELNET", "Raw TELNET greeting/banner line."),
    "tftp.open_read": FieldSpec("tftp.open_read", bool, "TFTP", "TFTP scanner: open read."),
    "tls.certificate_sha256": FieldSpec("tls.certificate_sha256", str, "TLS", "SHA-256 fingerprint of the presented leaf certificate."),
    "tls.ja4s": FieldSpec("tls.ja4s", str, "TLS", "JA4S server TLS-stack fingerprint (threat-hunting pivot)."),
    "tls.self_signed": FieldSpec("tls.self_signed", bool, "TLS", "Whether the presented certificate is self-signed."),
    "tls.subject_names": FieldSpec("tls.subject_names", tuple, "TLS", "SAN dNSNames of the presented certificate."),
    "upnp.server": FieldSpec("upnp.server", str, "UPNP", "UPNP scanner: server."),
    "vnc.rfb_version": FieldSpec("vnc.rfb_version", str, "VNC", "VNC scanner: rfb version."),
    "vnc.security_types": FieldSpec("vnc.security_types", tuple, "VNC", "VNC scanner: security types."),
    "wdbrpc.firmware": FieldSpec("wdbrpc.firmware", str, "WDBRPC", "Firmware revision reported by the WDBRPC identity handshake."),
    "wdbrpc.model": FieldSpec("wdbrpc.model", str, "WDBRPC", "Device model reported by the WDBRPC identity handshake."),
    "wdbrpc.vendor": FieldSpec("wdbrpc.vendor", str, "WDBRPC", "Device vendor reported by the WDBRPC identity handshake."),
    "web.fronting_ip_index": FieldSpec("web.fronting_ip_index", int, "WEB", "Scaled address index of the host fronting the name."),
    "web.name": FieldSpec("web.name", str, "WEB", "The web property name this record was fetched under."),
    "winrm.auth_schemes": FieldSpec("winrm.auth_schemes", str, "WINRM", "WINRM scanner: auth schemes."),
    "winrm.server": FieldSpec("winrm.server", str, "WINRM", "WINRM scanner: server."),
    "x11.open_access": FieldSpec("x11.open_access", bool, "X11", "X11 scanner: open access."),
    "x11.release": FieldSpec("x11.release", str, "X11", "X11 scanner: release."),
    "x11.vendor": FieldSpec("x11.vendor", str, "X11", "Device vendor reported by the X11 identity handshake."),
}


def validate_record(record: Dict[str, object], strict: bool = True) -> list:
    """Check a service record against the catalog.

    Returns a list of problem strings (empty = valid).  With
    ``strict=False``, unknown fields are tolerated (forward compatibility)
    but type mismatches on known fields still fail.
    """
    problems = []
    for name, value in record.items():
        spec = FIELD_CATALOG.get(name)
        if spec is None:
            if strict:
                problems.append(f"unknown field: {name}")
            continue
        if value is None:
            continue
        expected = spec.type
        if expected is tuple and isinstance(value, (list, tuple)):
            continue
        if expected is int and isinstance(value, bool):
            problems.append(f"{name}: bool where int expected")
            continue
        if not isinstance(value, expected):
            problems.append(
                f"{name}: {type(value).__name__} where {expected.__name__} expected"
            )
    return problems
