"""Follow-up liveness checks (the evaluation's ZGrab re-scan).

The paper filters each engine's answers through an immediate re-scan from a
network unrelated to any engine's production scanning.  ``probe_liveness``
does exactly that — open a connection and require application data — while
``oracle_liveness`` consults ground truth directly (no probe loss), used
where the paper's own methodology could enumerate true state.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.engines.base import ReportedService
from repro.eval.world import EVAL_VANTAGE
from repro.protocols import Interrogator, default_registry
from repro.simnet import SimulatedInternet

__all__ = ["probe_liveness", "oracle_liveness", "validate_protocol"]

_INTERROGATOR = Interrogator(default_registry())


def probe_liveness(internet: SimulatedInternet, service: ReportedService, now: float) -> bool:
    """Re-scan one reported service: is *something* serving there now?"""
    conn = internet.connect(
        service.ip_index, service.port, now, EVAL_VANTAGE,
        transport=service.transport, scanner="eval",
    )
    if conn is None:
        return False
    return _INTERROGATOR.interrogate(conn).success


def oracle_liveness(internet: SimulatedInternet, service: ReportedService, now: float) -> bool:
    """Ground-truth liveness (no probe loss)."""
    if internet.instance_at(service.ip_index, service.port, now) is not None:
        return True
    return service.transport == "tcp" and internet.pseudo_at(service.ip_index, now) is not None


def validate_protocol(
    internet: SimulatedInternet, service: ReportedService, now: float
) -> bool:
    """Does a full L7 handshake confirm the engine's protocol label?

    This is the Table 4 validation step: an entry only counts as accurate
    when the claimed protocol's handshake completes right now.
    """
    if service.label is None:
        return False
    conn = internet.connect(
        service.ip_index, service.port, now, EVAL_VANTAGE,
        transport=service.transport, scanner="eval",
    )
    if conn is None:
        return False
    result = _INTERROGATOR.refresh(conn, service.label if service.label in default_registry() else "")
    return result.success and result.service_name == service.label


def filter_live(
    internet: SimulatedInternet,
    services: Iterable[ReportedService],
    now: float,
    oracle: bool = False,
) -> Tuple[List[ReportedService], List[ReportedService]]:
    """Split reported services into (live, stale) via follow-up scans."""
    check = oracle_liveness if oracle else probe_liveness
    live: List[ReportedService] = []
    stale: List[ReportedService] = []
    for service in services:
        (live if check(internet, service, now) else stale).append(service)
    return live, stale
