"""Service population by port (Figure 4, Appendix B).

From a sampled scan of all ports, the per-port service population follows a
smoothly decaying distribution with no knee separating "popular" from
"unpopular" ports — the observation that led Censys to drop its fixed
top-5000-port scan in favour of the full-65K background plus prediction.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence, Tuple

from repro.eval.groundtruth import GroundTruthSample

__all__ = ["port_population_series", "decay_smoothness"]


def port_population_series(sample: GroundTruthSample) -> List[Tuple[int, int, int]]:
    """(rank, port, observed service count), rank 1 = most populated."""
    counts = Counter(service.port for service in sample.services)
    series = []
    for rank, (port, count) in enumerate(counts.most_common(), start=1):
        series.append((rank, port, count))
    return series


def decay_smoothness(series: Sequence[Tuple[int, int, int]]) -> float:
    """Largest single-step drop ratio in the sorted populations.

    A hard cut-off between popular and unpopular ports would show as one
    step where the population falls by a large factor; a smooth power-law
    decay keeps successive ratios near one.  Returns the max ratio
    count[i]/count[i+1] over the (noise-robust) top of the distribution.
    """
    counts = [count for _, _, count in series if count >= 3]
    if len(counts) < 3:
        return 1.0
    worst = 1.0
    for a, b in zip(counts, counts[1:]):
        worst = max(worst, a / b)
    return worst


def tier_shares(series: Sequence[Tuple[int, int, int]]) -> Tuple[float, float, float]:
    """Population shares of rank tiers (top-10, 11–100, beyond)."""
    total = sum(count for _, _, count in series)
    if total == 0:
        return (0.0, 0.0, 0.0)
    top10 = sum(count for rank, _, count in series if rank <= 10)
    top100 = sum(count for rank, _, count in series if rank <= 100)
    return (top10 / total, (top100 - top10) / total, (total - top100) / total)
