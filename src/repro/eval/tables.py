"""Text rendering of the paper's tables and figures from measured data."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.eval.coverage import AccuracyRow, TierCoverage
from repro.eval.freshness import FreshnessResult
from repro.eval.honeypots import DiscoveryStats, overall_stats
from repro.eval.ics import ICS_PROTOCOL_ORDER, IcsCell

__all__ = [
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "render_figure2",
    "render_figure3",
]


def _pct(x: float) -> str:
    return f"{100 * x:.0f}%"


def render_table1(rows: List[TierCoverage]) -> str:
    lines = ["Table 1: Coverage of Services in Engines (union of active services)"]
    header = f"{'Coverage':<14}" + "".join(f"{r.engine:>10}" for r in rows)
    lines.append(header)
    for tier, attr in (("Top 10 Ports", "top10"), ("Top 100 Ports", "top100"), ("All 65K Ports", "all_ports")):
        lines.append(f"{tier:<14}" + "".join(f"{_pct(getattr(r, attr)):>10}" for r in rows))
    return "\n".join(lines)


def render_table2(rows: List[AccuracyRow]) -> str:
    lines = ["Table 2: Coverage of Current IPv4 Services"]
    header = f"{'':<16}" + "".join(f"{r.engine:>10}" for r in rows)
    lines.append(header)
    lines.append(f"{'Self-Reported':<16}" + "".join(f"{r.self_reported:>10}" for r in rows))
    lines.append(f"{'Est. % Accurate':<16}" + "".join(f"{_pct(r.pct_accurate):>10}" for r in rows))
    lines.append(f"{'Est. % Unique':<16}" + "".join(f"{_pct(r.pct_unique):>10}" for r in rows))
    lines.append(f"{'Est. # Accurate':<16}" + "".join(f"{r.est_accurate:>10}" for r in rows))
    return "\n".join(lines)


def render_table3(
    country_rows: Dict[str, Dict[str, float]],
    protocol_rows: Dict[str, Dict[str, float]],
    engine_names: Sequence[str],
) -> str:
    lines = ["Table 3: Country and Protocol Coverage (vs. ground-truth sample)"]
    header = f"{'Category':<16}" + "".join(f"{n:>10}" for n in engine_names)
    lines.append(header)
    for rows in (country_rows, protocol_rows):
        for name, row in rows.items():
            label = f"{name} ({int(row['_count'])})"
            lines.append(
                f"{label:<16}" + "".join(f"{_pct(row[n]):>10}" for n in engine_names)
            )
    return "\n".join(lines)


def render_table4(
    table: Dict[str, Dict[str, IcsCell]],
    engine_names: Sequence[str],
    protocols: Optional[Sequence[str]] = None,
) -> str:
    protocols = list(protocols or ICS_PROTOCOL_ORDER)
    lines = ["Table 4: ICS Coverage (Accurate / Reported per engine)"]
    header = f"{'Protocol':<12}" + "".join(f"{n + ' A/R':>16}" for n in engine_names)
    lines.append(header)
    for protocol in protocols:
        row = table.get(protocol, {})
        cells = []
        for name in engine_names:
            cell = row.get(name)
            if cell is None or cell.reported == 0:
                cells.append(f"{'-':>16}")
            else:
                cells.append(f"{f'{cell.accurate}/{cell.reported}':>16}")
        lines.append(f"{protocol:<12}" + "".join(cells))
    return "\n".join(lines)


def render_table5(table: Dict[str, List[DiscoveryStats]], engine_names: Sequence[str]) -> str:
    lines = ["Table 5: Time To Discovery (hours)"]
    header = f"{'Port/Proto':<16}" + "".join(f"{n + ' mean/med':>20}" for n in engine_names)
    lines.append(header)
    ports = [(r.port, r.protocol) for r in table[engine_names[0]]]
    for i, (port, protocol) in enumerate(ports):
        cells = []
        for name in engine_names:
            row = table[name][i]
            if row.mean is None:
                cells.append(f"{'-':>20}")
            else:
                cells.append(f"{f'{row.mean:.1f}/{row.median:.1f}':>20}")
        lines.append(f"{f'{port}/{protocol}':<16}" + "".join(cells))
    summary = []
    for name in engine_names:
        mean, median = overall_stats(table[name])
        summary.append(
            f"{name}: overall mean {mean:.1f}h median {median:.1f}h"
            if mean is not None
            else f"{name}: found nothing"
        )
    lines.append(" | ".join(summary))
    return "\n".join(lines)


def render_figure2(results: List[FreshnessResult]) -> str:
    lines = ["Figure 2: Service Data Freshness (age of returned services)"]
    for result in results:
        lines.append(
            f"  {result.engine:<10} n={len(result.ages):>6}  "
            f"median={result.median_age:>8.1f}h  mean={result.mean_age:>8.1f}h  "
            f"max={result.max_age:>8.1f}h  <48h={_pct(result.fraction_fresher_than(48.0)):>5}"
        )
    return "\n".join(lines)


def render_figure3(matrix: Dict[str, Dict[str, float]]) -> str:
    names = list(matrix)
    lines = ["Figure 3: Scan Engine Coverage Overlap (column engine's coverage of row engine)"]
    lines.append(f"{'':<10}" + "".join(f"{a:>10}" for a in names))
    for b in names:
        lines.append(f"{b:<10}" + "".join(f"{_pct(matrix[a][b]):>10}" for a in names))
    return "\n".join(lines)
