"""Evaluation harness: the paper's tables and figures as runnable experiments."""

from repro.eval.coverage import (
    AccuracyRow,
    TierCoverage,
    ground_truth_coverage,
    random_ip_accuracy,
    union_tier_coverage,
)
from repro.eval.freshness import (
    FreshnessResult,
    age_cdf,
    collect_freshness,
    rank_order_correlation,
)
from repro.eval.groundtruth import GroundTruthSample, GroundTruthService, collect_ground_truth
from repro.eval.honeypots import DiscoveryStats, discovery_table, run_honeypot_experiment
from repro.eval.ics import ICS_PROTOCOL_ORDER, IcsCell, ics_census, ics_ground_truth_counts
from repro.eval.liveness import oracle_liveness, probe_liveness, validate_protocol
from repro.eval.overlap import mean_coverage_by_others, mean_coverage_of_others, overlap_matrix
from repro.eval.portpop import decay_smoothness, port_population_series, tier_shares
from repro.eval.sampling import ConvergencePoint, convergence_curve, required_sample_size
from repro.eval.world import EVAL_VANTAGE, EvalConfig, EvaluationWorld

__all__ = [
    "EvalConfig",
    "EvaluationWorld",
    "EVAL_VANTAGE",
    "AccuracyRow",
    "TierCoverage",
    "random_ip_accuracy",
    "union_tier_coverage",
    "ground_truth_coverage",
    "FreshnessResult",
    "collect_freshness",
    "age_cdf",
    "rank_order_correlation",
    "GroundTruthSample",
    "GroundTruthService",
    "collect_ground_truth",
    "DiscoveryStats",
    "run_honeypot_experiment",
    "discovery_table",
    "ICS_PROTOCOL_ORDER",
    "IcsCell",
    "ics_census",
    "ics_ground_truth_counts",
    "probe_liveness",
    "oracle_liveness",
    "validate_protocol",
    "overlap_matrix",
    "mean_coverage_of_others",
    "mean_coverage_by_others",
    "port_population_series",
    "decay_smoothness",
    "tier_shares",
    "ConvergencePoint",
    "convergence_curve",
    "required_sample_size",
]
