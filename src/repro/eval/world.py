"""The evaluation world: one simulated Internet, five scan engines.

Builds the substrate, runs the Censys platform and the four competitor
engines side by side through a warm-up period (engines carry accumulated
state into any measurement, exactly like production systems), and hands the
evaluation modules a uniform set of engine harnesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core import CensysPlatform, PlatformConfig
from repro.engines import BaselineEngine, CensysHarness, make_baseline_engines
from repro.engines.base import ScanEngineHarness
from repro.simnet import (
    DAY,
    SimulatedInternet,
    Vantage,
    WorkloadConfig,
    build_simnet,
)

__all__ = ["EvalConfig", "EvaluationWorld"]


@dataclass(slots=True)
class EvalConfig:
    """Scale and timing of an evaluation run."""

    bits: int = 15
    services_target: int = 2500
    warmup_days: float = 60.0
    #: Extra ground-truth horizon after t=0 (honeypot experiments run here).
    post_days: float = 30.0
    tick_hours: float = 6.0
    seed: int = 7
    with_baselines: bool = True
    platform_config: Optional[PlatformConfig] = None

    @property
    def t_start(self) -> float:
        return -self.warmup_days * DAY

    @property
    def t_end(self) -> float:
        return self.post_days * DAY


#: The vantage the evaluation's follow-up liveness scans run from — a
#: different network than any engine's production scanning, per §6.1.
EVAL_VANTAGE = Vantage("eval-recheck", "us", provider="eval", loss_rate=0.01, vantage_id=99)


class EvaluationWorld:
    """Substrate plus all five engines, advanced in lock-step."""

    def __init__(self, config: Optional[EvalConfig] = None) -> None:
        self.config = config or EvalConfig()
        cfg = self.config
        self.internet: SimulatedInternet = build_simnet(
            bits=cfg.bits,
            workload_config=WorkloadConfig(
                seed=cfg.seed,
                services_target=cfg.services_target,
                t_start=cfg.t_start,
                t_end=cfg.t_end,
            ),
            seed=cfg.seed,
        )
        self.platform = CensysPlatform(
            self.internet,
            cfg.platform_config or PlatformConfig(seed=cfg.seed),
            start_time=cfg.t_start,
        )
        self.censys = CensysHarness(self.platform)
        self.baselines: List[BaselineEngine] = (
            make_baseline_engines(self.internet) if cfg.with_baselines else []
        )
        self._baseline_time = cfg.t_start
        self.now = cfg.t_start

    # ------------------------------------------------------------------

    def run_until(self, t_end: float) -> None:
        """Advance every engine to ``t_end`` in shared ticks."""
        dt = self.config.tick_hours
        while self.now < t_end - 1e-9:
            step = min(dt, t_end - self.now)
            self.platform.run_until(self.now + step, tick_hours=step)
            for baseline in self.baselines:
                baseline.tick(self.now, step)
            self.now += step

    def run_warmup(self) -> None:
        self.run_until(0.0)

    # ------------------------------------------------------------------

    def engines(self) -> List[ScanEngineHarness]:
        """Censys first, then the baselines (Table order)."""
        return [self.censys, *self.baselines]

    def engine(self, name: str) -> ScanEngineHarness:
        for engine in self.engines():
            if engine.name == name:
                return engine
        raise KeyError(f"no engine named {name!r}")

    def notify_new_instances(self, instances) -> None:
        """Tell every running engine about endpoints injected mid-run."""
        self.platform.on_new_endpoints(instances)
        for baseline in self.baselines:
            baseline.notify_new_instances(instances)
