"""Coverage-overlap matrix between engines (Figure 3).

Cell (A, B): the fraction of B's *confirmed-active* services that A also
serves.  The paper's reading: Censys has the greatest coverage of every
other engine, and every other engine covers Censys least.
"""

from __future__ import annotations

from typing import Dict, Sequence, Set, Tuple

__all__ = ["overlap_matrix"]

Binding = Tuple[int, int, str]


def overlap_matrix(live_sets: Dict[str, Set[Binding]]) -> Dict[str, Dict[str, float]]:
    """matrix[a][b] = |live(a) & live(b)| / |live(b)| (A's coverage of B)."""
    names = list(live_sets)
    matrix: Dict[str, Dict[str, float]] = {}
    for a in names:
        matrix[a] = {}
        for b in names:
            theirs = live_sets[b]
            if not theirs:
                matrix[a][b] = 0.0
                continue
            matrix[a][b] = len(live_sets[a] & theirs) / len(theirs)
    return matrix


def mean_coverage_of_others(matrix: Dict[str, Dict[str, float]], engine: str) -> float:
    """Average of engine's coverage over every other engine's services."""
    others = [b for b in matrix[engine] if b != engine]
    if not others:
        return 0.0
    return sum(matrix[engine][b] for b in others) / len(others)


def mean_coverage_by_others(matrix: Dict[str, Dict[str, float]], engine: str) -> float:
    """Average of other engines' coverage of this engine's services."""
    others = [a for a in matrix if a != engine]
    if not others:
        return 0.0
    return sum(matrix[a][engine] for a in others) / len(others)
