"""Time-to-discovery via honeypots (Table 5 — §6.4).

Deploys the paper's honeypot fleet into a *running* evaluation world
(engines keep scanning), then measures, per engine and per port, the delay
between a honeypot coming online and the engine's first probe reaching it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.eval.world import EvaluationWorld
from repro.simnet import DAY, HONEYPOT_PORTS, HoneypotDeployment, deploy_honeypots

__all__ = ["DiscoveryStats", "run_honeypot_experiment", "discovery_table"]


@dataclass(slots=True)
class DiscoveryStats:
    """Mean/median discovery delay for one (engine, port) pair."""

    engine: str
    port: int
    protocol: str
    delays: List[float]

    @property
    def found(self) -> int:
        return len(self.delays)

    @property
    def mean(self) -> Optional[float]:
        return sum(self.delays) / len(self.delays) if self.delays else None

    @property
    def median(self) -> Optional[float]:
        if not self.delays:
            return None
        ordered = sorted(self.delays)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2


def run_honeypot_experiment(
    world: EvaluationWorld,
    count: int = 100,
    observe_days: float = 14.0,
    stagger_hours: float = 8.0,
    seed: int = 71,
) -> HoneypotDeployment:
    """Deploy honeypots at the world's current time and keep running.

    The deployment staggers honeypot creation (the paper used eight-hour
    batches over ~8 days); the world then runs ``observe_days`` beyond the
    last batch so slower engines get a fair window.
    """
    start = world.now
    deployment = deploy_honeypots(
        world.internet,
        count=count,
        start_time=start,
        stagger_hours=stagger_hours,
        seed=seed,
    )
    world.notify_new_instances(deployment.instances)
    last_deploy = max(deployment.deploy_times.values())
    world.run_until(last_deploy + observe_days * DAY)
    return deployment


def discovery_table(
    deployment: HoneypotDeployment,
    engine_names: Sequence[str],
    layer: str = "l4",
) -> Dict[str, List[DiscoveryStats]]:
    """engine -> per-port discovery statistics (Table 5 rows)."""
    protocol_of = dict(HONEYPOT_PORTS)
    table: Dict[str, List[DiscoveryStats]] = {}
    for engine in engine_names:
        delays = deployment.discovery_delays(engine, layer=layer)
        rows = [
            DiscoveryStats(
                engine=engine,
                port=port,
                protocol=protocol_of.get(port, "?"),
                delays=sorted(delays.get(port, [])),
            )
            for port, _ in HONEYPOT_PORTS
        ]
        table[engine] = rows
    return table


def overall_stats(rows: List[DiscoveryStats]) -> Tuple[Optional[float], Optional[float]]:
    """Fleet-wide (mean, median) across all ports for one engine."""
    all_delays = [d for row in rows for d in row.delays]
    if not all_delays:
        return None, None
    ordered = sorted(all_delays)
    mean = sum(ordered) / len(ordered)
    mid = len(ordered) // 2
    median = ordered[mid] if len(ordered) % 2 else (ordered[mid - 1] + ordered[mid]) / 2
    return mean, median
