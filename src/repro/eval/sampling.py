"""Sample-size convergence of the freshness/liveness estimator (Figure 5).

Appendix C shows that ~50 sampled services suffice for the
expected-percent-responsive estimate to reach its asymptote.  This module
bootstraps the estimator at increasing sample sizes and reports the
spread, reproducing that convergence curve.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["ConvergencePoint", "convergence_curve"]


@dataclass(slots=True)
class ConvergencePoint:
    """Bootstrap behaviour of the estimator at one sample size."""

    sample_size: int
    mean_estimate: float
    spread: float          # std-dev across bootstrap resamples

    @property
    def converged(self) -> bool:
        return self.spread < 0.05


def convergence_curve(
    liveness_outcomes: Sequence[bool],
    sample_sizes: Sequence[int] = (5, 10, 25, 50, 100, 200, 400),
    bootstrap_rounds: int = 200,
    seed: int = 81,
) -> List[ConvergencePoint]:
    """Bootstrap the percent-responsive estimator at each sample size.

    ``liveness_outcomes`` are the follow-up-scan results (responded or
    not) for one engine's returned services — the raw material of the
    freshness estimate.
    """
    if not liveness_outcomes:
        raise ValueError("need at least one liveness outcome")
    rng = random.Random(seed)
    outcomes = list(liveness_outcomes)
    points = []
    for size in sample_sizes:
        estimates = []
        for _ in range(bootstrap_rounds):
            resample = [outcomes[rng.randrange(len(outcomes))] for _ in range(size)]
            estimates.append(sum(resample) / size)
        mean = sum(estimates) / len(estimates)
        variance = sum((e - mean) ** 2 for e in estimates) / len(estimates)
        points.append(
            ConvergencePoint(sample_size=size, mean_estimate=mean, spread=variance**0.5)
        )
    return points


def required_sample_size(points: Sequence[ConvergencePoint], tolerance: float = 0.05) -> int:
    """The smallest evaluated sample size whose spread is within tolerance."""
    for point in points:
        if point.spread < tolerance:
            return point.sample_size
    return points[-1].sample_size if points else 0
