"""Coverage and accuracy measurements (Tables 1, 2, and 3).

Three methodologies from §6:

* **random-IP comparison** (Table 2): sample random addresses, query every
  engine for their current state, re-scan what they return, and derive
  self-reported totals, estimated accuracy, uniqueness, and the estimated
  number of accurate services;
* **union coverage by port tier** (Table 1): pool every engine's
  currently-active services and measure each engine's share per
  (top-10 / top-100 / all-65K) port tier;
* **ground-truth coverage** (Table 3): each engine's coverage of the
  independent sub-sampled scan, grouped by country and protocol.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.engines.base import ReportedService, ScanEngineHarness
from repro.eval.groundtruth import GroundTruthSample
from repro.eval.liveness import oracle_liveness, probe_liveness
from repro.simnet import SimulatedInternet
from repro.simnet.ports import PortModel

__all__ = [
    "AccuracyRow",
    "random_ip_accuracy",
    "TierCoverage",
    "union_tier_coverage",
    "ground_truth_coverage",
]

Binding = Tuple[int, int, str]


@dataclass(slots=True)
class AccuracyRow:
    """One engine's row of Table 2."""

    engine: str
    self_reported: int
    sampled_entries: int
    pct_accurate: float
    pct_unique: float

    @property
    def est_accurate(self) -> int:
        return round(self.self_reported * self.pct_accurate * self.pct_unique)


def random_ip_accuracy(
    internet: SimulatedInternet,
    engines: Sequence[ScanEngineHarness],
    now: float,
    sample_size: int = 4000,
    seed: int = 51,
    use_probe_liveness: bool = True,
) -> List[AccuracyRow]:
    """The Table 2 methodology over ``sample_size`` random addresses."""
    rng = random.Random(seed)
    sample_size = min(sample_size, internet.space.size)
    sample_ips = rng.sample(range(internet.space.size), sample_size)
    rows: List[AccuracyRow] = []
    check = probe_liveness if use_probe_liveness else oracle_liveness
    for engine in engines:
        returned: List[ReportedService] = []
        for ip_index in sample_ips:
            returned.extend(engine.query_ip(ip_index, now))
        live = sum(1 for service in returned if check(internet, service, now))
        bindings = {service.binding for service in returned}
        pct_accurate = live / len(returned) if returned else 0.0
        pct_unique = len(bindings) / len(returned) if returned else 1.0
        rows.append(
            AccuracyRow(
                engine=engine.name,
                self_reported=engine.self_reported_count(now),
                sampled_entries=len(returned),
                pct_accurate=pct_accurate,
                pct_unique=pct_unique,
            )
        )
    return rows


@dataclass(slots=True)
class TierCoverage:
    """One engine's row of Table 1."""

    engine: str
    top10: float
    top100: float
    all_ports: float


def union_tier_coverage(
    internet: SimulatedInternet,
    engines: Sequence[ScanEngineHarness],
    now: float,
    port_model: Optional[PortModel] = None,
) -> Tuple[List[TierCoverage], Dict[str, Set[Binding]]]:
    """Table 1: per-tier coverage over the union of active services.

    Every engine's served entries are pooled, filtered to those still
    alive (the follow-up scan step, done via ground truth so probe loss
    does not double-count), and each engine is scored per port tier.
    Returns the rows plus the per-engine live binding sets (reused by the
    Figure 3 overlap matrix).
    """
    port_model = port_model or internet.workload.port_model
    live_sets: Dict[str, Set[Binding]] = {}
    for engine in engines:
        live = set()
        for service in engine.all_entries(now):
            if oracle_liveness(internet, service, now):
                live.add(service.binding)
        live_sets[engine.name] = live
    union: Set[Binding] = set()
    for bindings in live_sets.values():
        union |= bindings
    top10 = set(port_model.top_ports(10))
    top100 = set(port_model.top_ports(100))
    tiers = {
        "top10": {b for b in union if b[1] in top10},
        "top100": {b for b in union if b[1] in top100},
        "all": union,
    }
    rows = []
    for engine in engines:
        mine = live_sets[engine.name]
        rows.append(
            TierCoverage(
                engine=engine.name,
                top10=_share(mine, tiers["top10"]),
                top100=_share(mine, tiers["top100"]),
                all_ports=_share(mine, tiers["all"]),
            )
        )
    return rows, live_sets


def _share(mine: Set[Binding], tier: Set[Binding]) -> float:
    if not tier:
        return 0.0
    return len(mine & tier) / len(tier)


def ground_truth_coverage(
    sample: GroundTruthSample,
    engines: Sequence[ScanEngineHarness],
    now: float,
    group_by: str = "country",
    min_group_size: int = 10,
) -> Dict[str, Dict[str, float]]:
    """Table 3: engine coverage of the ground-truth sample, grouped.

    ``group_by`` is "country", "protocol", or "all".  A ground-truth
    service counts as covered when the engine currently serves *that
    binding* (labels may differ; the paper checks presence).
    """
    if group_by == "country":
        groups = sample.by_country()
    elif group_by == "protocol":
        groups = sample.by_protocol()
    elif group_by == "all":
        groups = {"all": sample.services}
    else:
        raise ValueError(f"unknown grouping: {group_by}")
    groups = {k: v for k, v in groups.items() if len(v) >= min_group_size}
    result: Dict[str, Dict[str, float]] = {}
    for name, services in sorted(groups.items(), key=lambda kv: -len(kv[1])):
        row: Dict[str, float] = {"_count": float(len(services))}
        for engine in engines:
            covered = 0
            for service in services:
                served = engine.query_ip(service.ip_index, now)
                if any(
                    s.port == service.port and s.transport == service.transport
                    for s in served
                ):
                    covered += 1
            row[engine.name] = covered / len(services)
        result[name] = row
    return result
