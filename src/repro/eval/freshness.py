"""Data-freshness measurement (Figure 2) and its link to accuracy.

For each engine, collect the "last scanned date" of the services returned
for a random-IP sample and build the age CDF.  The paper's headline: 100%
of Censys data is under 48 hours old, competitors range up to years, and
freshness rank-order correlates perfectly with accuracy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.engines.base import ScanEngineHarness
from repro.simnet import SimulatedInternet

__all__ = ["FreshnessResult", "collect_freshness", "age_cdf", "rank_order_correlation"]


@dataclass(slots=True)
class FreshnessResult:
    """Ages (hours since last scan) of one engine's returned services."""

    engine: str
    ages: List[float]

    @property
    def mean_age(self) -> float:
        return sum(self.ages) / len(self.ages) if self.ages else 0.0

    @property
    def median_age(self) -> float:
        if not self.ages:
            return 0.0
        ordered = sorted(self.ages)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2

    @property
    def max_age(self) -> float:
        return max(self.ages) if self.ages else 0.0

    def fraction_fresher_than(self, hours: float) -> float:
        if not self.ages:
            return 0.0
        return sum(1 for a in self.ages if a <= hours) / len(self.ages)


def collect_freshness(
    internet: SimulatedInternet,
    engines: Sequence[ScanEngineHarness],
    now: float,
    sample_size: int = 4000,
    seed: int = 61,
) -> List[FreshnessResult]:
    """Service ages per engine for a shared random-IP sample."""
    rng = random.Random(seed)
    sample_size = min(sample_size, internet.space.size)
    sample_ips = rng.sample(range(internet.space.size), sample_size)
    results = []
    for engine in engines:
        ages: List[float] = []
        for ip_index in sample_ips:
            for service in engine.query_ip(ip_index, now):
                ages.append(max(0.0, now - service.last_scanned))
        results.append(FreshnessResult(engine=engine.name, ages=ages))
    return results


def age_cdf(result: FreshnessResult, points: int = 50) -> List[Tuple[float, float]]:
    """(age_hours, cumulative fraction) pairs for plotting Figure 2."""
    if not result.ages:
        return []
    ordered = sorted(result.ages)
    cdf = []
    step = max(1, len(ordered) // points)
    for i in range(0, len(ordered), step):
        cdf.append((ordered[i], (i + 1) / len(ordered)))
    cdf.append((ordered[-1], 1.0))
    return cdf


def rank_order_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation (exact, no ties expected at engine scale)."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two equal-length sequences of >= 2 points")
    n = len(xs)

    def ranks(values: Sequence[float]) -> List[float]:
        order = sorted(range(n), key=lambda i: values[i])
        rank = [0.0] * n
        for position, i in enumerate(order):
            rank[i] = float(position)
        return rank

    rx, ry = ranks(xs), ranks(ys)
    d2 = sum((a - b) ** 2 for a, b in zip(rx, ry))
    return 1 - 6 * d2 / (n * (n * n - 1))
