"""Ground-truth approximation: the random sub-sampled 65K-port scan.

Replicates §6.1: independently scan a random fraction of the full
(IP x port) space with a fresh permutation over one week, keep the
responsive services, and drop hosts that answer on more than 20 ports with
nearly identical pseudo-services (they would otherwise outnumber
legitimate services).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.eval.world import EVAL_VANTAGE
from repro.net import AffinePermutation, ProbeSpace
from repro.protocols import Interrogator, default_registry
from repro.simnet import DAY, SimulatedInternet

__all__ = ["GroundTruthService", "GroundTruthSample", "collect_ground_truth"]


@dataclass(frozen=True, slots=True)
class GroundTruthService:
    """One service confirmed by the independent sample scan."""

    ip_index: int
    port: int
    transport: str
    protocol: str          # interrogated service label (e.g. HTTPS)
    country: str
    observed_at: float

    @property
    def binding(self) -> Tuple[int, int, str]:
        return (self.ip_index, self.port, self.transport)


@dataclass(slots=True)
class GroundTruthSample:
    """The sample plus its parameters (denominators for coverage math)."""

    services: List[GroundTruthService]
    sample_fraction: float
    started_at: float
    duration_hours: float
    pseudo_hosts_filtered: int

    def by_country(self) -> Dict[str, List[GroundTruthService]]:
        grouped: Dict[str, List[GroundTruthService]] = {}
        for service in self.services:
            grouped.setdefault(service.country, []).append(service)
        return grouped

    def by_protocol(self) -> Dict[str, List[GroundTruthService]]:
        grouped: Dict[str, List[GroundTruthService]] = {}
        for service in self.services:
            grouped.setdefault(service.protocol, []).append(service)
        return grouped


def collect_ground_truth(
    internet: SimulatedInternet,
    started_at: float,
    sample_fraction: float = 0.02,
    duration_hours: float = 7 * DAY,
    seed: int = 404,
    pseudo_port_threshold: int = 20,
) -> GroundTruthSample:
    """Run the sub-sampled 65K-port scan (paper: 0.1% over one week).

    The scaled simulation uses a larger fraction by default so the sample
    stays statistically useful at small service populations.
    """
    space = ProbeSpace.single_range(0, internet.space.size, list(range(65536)))
    permutation = AffinePermutation(space.size, seed=seed)
    index = internet.prepare_scan(space, permutation, transport="tcp")
    probes = int(space.size * sample_fraction)
    rate = probes / duration_hours
    hits = index.query(0, probes, started_at, rate, EVAL_VANTAGE, scanner="groundtruth")

    interrogator = Interrogator(default_registry())
    rng = random.Random(seed + 1)
    pseudo_ips: Set[int] = set()
    confirmed: List[GroundTruthService] = []
    for hit in hits:
        ip_index = hit.target.ip_index
        if ip_index in pseudo_ips:
            continue
        if _looks_pseudo(internet, ip_index, hit.probe_time, rng, pseudo_port_threshold):
            pseudo_ips.add(ip_index)
            continue
        conn = internet.connect(
            ip_index, hit.target.port, hit.probe_time, EVAL_VANTAGE,
            transport="tcp", scanner="groundtruth",
        )
        if conn is None:
            continue
        result = interrogator.interrogate(conn)
        if not result.success or not result.service_name:
            continue
        confirmed.append(
            GroundTruthService(
                ip_index=ip_index,
                port=hit.target.port,
                transport="tcp",
                protocol=result.service_name,
                country=internet.topology.country_of(ip_index),
                observed_at=hit.probe_time,
            )
        )
    return GroundTruthSample(
        services=confirmed,
        sample_fraction=sample_fraction,
        started_at=started_at,
        duration_hours=duration_hours,
        pseudo_hosts_filtered=len(pseudo_ips),
    )


def _looks_pseudo(
    internet: SimulatedInternet,
    ip_index: int,
    t: float,
    rng: random.Random,
    threshold: int,
) -> bool:
    """Probe extra random ports: does the host answer on (nearly) all?

    The methodology probe: if more than ``threshold`` of a random-port
    sample respond, the host is a pseudo-service responder.
    """
    sample_ports = [rng.randrange(1, 65536) for _ in range(threshold + 8)]
    responding = 0
    for port in sample_ports:
        if internet.connect(ip_index, port, t, EVAL_VANTAGE, scanner="groundtruth") is not None:
            responding += 1
    return responding > threshold
