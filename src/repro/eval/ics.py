"""The ICS exposure census (Table 4 — §6.3).

ICS populations are small enough to enumerate exhaustively from every
engine, so this experiment queries each engine for every protocol it can
express, then validates each returned entry with a full protocol handshake
at query time.  Keyword-labeling engines over-report (their labels never
completed a handshake); validated counts measure true visibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.engines.base import ScanEngineHarness
from repro.eval.liveness import validate_protocol
from repro.protocols import default_registry
from repro.simnet import SimulatedInternet

__all__ = ["IcsCell", "ics_census", "ICS_PROTOCOL_ORDER"]

#: Table 4's row order.
ICS_PROTOCOL_ORDER = [
    "ATG", "BACNET", "CIMON_PLC", "CMORE", "CODESYS", "DIGI", "DNP3", "EIP",
    "FINS", "FOX", "GE_SRTP", "HART", "IEC60870", "MODBUS", "OPC_UA", "PCOM",
    "PCWORX", "PROCONOS", "REDLION", "S7", "WDBRPC",
]


@dataclass(slots=True)
class IcsCell:
    """One engine x protocol cell: reported and validated counts."""

    engine: str
    protocol: str
    reported: int
    accurate: int

    @property
    def supported(self) -> bool:
        """False renders as the table's '–' (engine lacks the scanner)."""
        return self.reported > 0


def ics_census(
    internet: SimulatedInternet,
    engines: Sequence[ScanEngineHarness],
    now: float,
    protocols: Optional[Sequence[str]] = None,
    ground_truth_alive: bool = True,
) -> Dict[str, Dict[str, IcsCell]]:
    """protocol -> engine -> (reported, validated) counts.

    ``reported``: entries the engine labels with the protocol.
    ``accurate``: the subset for which the protocol handshake completes at
    query time (de-duplicated by binding).
    """
    protocols = list(protocols or ICS_PROTOCOL_ORDER)
    registry = default_registry()
    table: Dict[str, Dict[str, IcsCell]] = {p: {} for p in protocols}
    for engine in engines:
        for protocol in protocols:
            if protocol not in registry:
                continue
            reported = engine.query_label(protocol, now)
            validated_bindings = set()
            for service in reported:
                if service.binding in validated_bindings:
                    continue
                if validate_protocol(internet, service, now):
                    validated_bindings.add(service.binding)
            table[protocol][engine.name] = IcsCell(
                engine=engine.name,
                protocol=protocol,
                reported=len(reported),
                accurate=len(validated_bindings),
            )
    return table


def ics_ground_truth_counts(internet: SimulatedInternet, now: float) -> Dict[str, int]:
    """True live population per ICS protocol (the census ceiling)."""
    counts: Dict[str, int] = {}
    for inst in internet.services_alive_at(now):
        if inst.protocol in ICS_PROTOCOL_ORDER:
            counts[inst.protocol] = counts.get(inst.protocol, 0) + 1
    return counts
