"""The simulated Internet: probe-level and connection-level access to the
ground-truth population.

Two access paths mirror the paper's two scan phases:

* **L4 segment queries** — a scan tier walks a permutation over a probe
  space; :class:`PreparedScanIndex` answers "which live endpoints fall in
  permutation positions [s, s+L)?" in O(log n + hits) using the inverse
  permutation, so full-space scans never enumerate dead probes.

* **L7 connections** — :meth:`SimulatedInternet.connect` establishes a
  connection to one endpoint, applying vantage-dependent reachability
  (packet loss, weekly routing anomalies, geoblocking), and returns a
  :class:`SimConnection` speaking the probe/reply protocol model (with TLS
  session gating).

The hot paths are NumPy-batched: the index keeps column arrays per indexed
endpoint (position, lifetime window, network ordinal, reachability salt) —
regular instances in one block, all pseudo-host (ip, port) rows merged into
a second — so a segment query is a pair of binary searches per block plus
whole-array liveness/reachability masks, with ``ProbeHit`` objects
materialized only for survivors.  Reachability draws run through the
vectorized splitmix64 kernel in :mod:`repro.net.mixvec`.  The scalar
per-element paths are retained (:meth:`PreparedScanIndex.query_reference`,
:meth:`SimulatedInternet.reachable_scalar`) as references;
``benchmarks/test_perf_regression.py`` holds the two equal on seeded
inputs.

Honeypot contacts are logged with the observing engine's identity, feeding
the Table 5 time-to-discovery experiment.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.net import AddressSpace, AffinePermutation, ProbeSpace, ProbeTarget
from repro.net.cyclic import _mix64
from repro.net.mixvec import MASK64, mix64_array
from repro.protocols.base import Probe, Reply, ServerProfile, reset, silence
from repro.protocols.registry import ProtocolRegistry, default_registry
from repro.protocols.tlslayer import tls_server_hello
from repro.simnet.instances import PseudoHost, ServiceInstance, WebProperty
from repro.simnet.topology import Topology
from repro.simnet.workload import Workload

__all__ = ["Vantage", "ProbeHit", "PreparedScanIndex", "SimConnection", "SimulatedInternet"]


@dataclass(frozen=True, slots=True)
class Vantage:
    """A scanning vantage point's network identity."""

    name: str
    region: str           # "us" | "eu" | "asia"
    provider: str = ""
    loss_rate: float = 0.03
    vantage_id: int = 0


class ProbeHit(NamedTuple):
    """One responsive L4 probe inside a queried segment.

    A NamedTuple for the same reason as :class:`ProbeTarget`: queries
    materialize thousands per simulated day, and tuple construction is the
    cheapest record instantiation Python offers.
    """

    target: ProbeTarget
    probe_time: float
    instance: Optional[ServiceInstance] = None
    pseudo: Optional[PseudoHost] = None


#: Bypasses NamedTuple.__new__ argument re-packing on the hot paths.
_tuple_new = tuple.__new__


@dataclass(slots=True)
class HoneypotContact:
    """A probe or connection observed by a honeypot."""

    time: float
    scanner: str
    ip_index: int
    port: int
    layer: str  # "l4" or "l7"


#: A block's surviving hits plus their probe times (for the final merge).
_CollectedPart = Tuple[List[ProbeHit], np.ndarray]


def _wrapped_offsets(positions: np.ndarray, start: int, m: int) -> np.ndarray:
    """(position - start) mod m for a sorted uint64 position slice."""
    offsets = positions.astype(np.int64)
    offsets -= start
    # Sorted input means the sign pattern is a prefix of negatives; the
    # scalar peeks skip the mask pass for the all/none-wrapped cases.
    if offsets[0] >= 0:
        return offsets
    if offsets[-1] < 0:
        offsets += m
        return offsets
    offsets[offsets < 0] += m
    return offsets


class _InstanceColumns:
    """Columnar view of position-indexed instances, sorted by position.

    One whole-array pass over a position slice replaces the per-element
    liveness and reachability checks of the scalar path.
    """

    __slots__ = ("positions", "birth", "death", "net_ords", "salts", "refs", "any_honeypot")

    def __init__(self, internet: "SimulatedInternet", positions: np.ndarray, refs: List[ServiceInstance]):
        self.positions = positions                      # uint64, sorted
        self.refs = refs
        self.birth = np.asarray([i.birth for i in refs], dtype=np.float64)
        self.death = np.asarray([i.death for i in refs], dtype=np.float64)
        ips = np.asarray([i.ip_index for i in refs], dtype=np.int64)
        self.net_ords = internet.topology.ordinals_of(ips)
        self.salts = np.asarray([i.instance_id & MASK64 for i in refs], dtype=np.uint64)
        self.any_honeypot = any(i.is_honeypot for i in refs)

    def __len__(self) -> int:
        return len(self.refs)

    def collect(
        self,
        internet: "SimulatedInternet",
        lo: int,
        hi: int,
        start: int,
        m: int,
        t0: float,
        rate: float,
        vantage: Vantage,
        scanner: str,
    ) -> Optional[_CollectedPart]:
        # uint64 needles: a Python-int needle forces a dtype-promoting
        # comparison over the whole column (~100x slower per search).
        left = int(self.positions.searchsorted(np.uint64(lo), side="left"))
        right = int(self.positions.searchsorted(np.uint64(hi), side="left"))
        if left == right:
            return None
        window = slice(left, right)
        times = t0 + _wrapped_offsets(self.positions[window], start, m) / rate
        keep = (self.birth[window] <= times) & (times < self.death[window])
        if not keep.any():
            return None
        keep &= internet._reachable_kernel(self.net_ords[window], self.salts[window], vantage, times)
        survivors = np.nonzero(keep)[0]
        if survivors.size == 0:
            return None
        sel_times = times[survivors]
        refs = self.refs
        sel_refs = [refs[i] for i in (survivors + left).tolist()]
        hits = [
            _tuple_new(ProbeHit, (_tuple_new(ProbeTarget, (inst.ip_index, inst.port)), probe_time, inst, None))
            for inst, probe_time in zip(sel_refs, sel_times.tolist())
        ]
        if self.any_honeypot:
            for hit in hits:
                if hit.instance.is_honeypot:
                    internet.log_honeypot_contact(hit.instance, hit.probe_time, scanner, "l4")
        return hits, sel_times


class _PseudoColumns:
    """All pseudo-host (ip, port) rows of a probe space in one sorted block.

    Per-row state is two small gathers away (owner ordinal -> lifetime,
    network ordinal, salt), so one segment query costs one searchsorted
    pair regardless of how many pseudo-hosts the space contains.
    """

    __slots__ = ("positions", "ports", "owners", "pseudos", "birth", "death", "net_ords", "salts")

    def __init__(
        self,
        positions: np.ndarray,
        ports: np.ndarray,
        owners: np.ndarray,
        pseudos: List[PseudoHost],
        net_ords: np.ndarray,
    ) -> None:
        self.positions = positions   # uint64, sorted
        self.ports = ports           # int64, aligned
        self.owners = owners         # int32 index into pseudos, aligned
        self.pseudos = pseudos
        self.birth = np.asarray([p.birth for p in pseudos], dtype=np.float64)
        self.death = np.asarray([p.death for p in pseudos], dtype=np.float64)
        self.net_ords = net_ords     # per pseudo
        self.salts = np.asarray([(-p.pseudo_id - 1) & MASK64 for p in pseudos], dtype=np.uint64)

    def collect(
        self,
        internet: "SimulatedInternet",
        lo: int,
        hi: int,
        start: int,
        m: int,
        t0: float,
        rate: float,
        vantage: Vantage,
    ) -> Optional[_CollectedPart]:
        left = int(self.positions.searchsorted(np.uint64(lo), side="left"))
        right = int(self.positions.searchsorted(np.uint64(hi), side="left"))
        if left == right:
            return None
        window = slice(left, right)
        times = t0 + _wrapped_offsets(self.positions[window], start, m) / rate
        owners = self.owners[window]
        keep = (self.birth[owners] <= times) & (times < self.death[owners])
        if not keep.any():
            return None
        keep &= internet._reachable_kernel(self.net_ords[owners], self.salts[owners], vantage, times)
        survivors = np.nonzero(keep)[0]
        if survivors.size == 0:
            return None
        sel_times = times[survivors]
        pseudos = self.pseudos
        sel_pseudos = [pseudos[o] for o in owners[survivors].tolist()]
        hits = [
            _tuple_new(ProbeHit, (_tuple_new(ProbeTarget, (p.ip_index, port)), probe_time, None, p))
            for p, port, probe_time in zip(
                sel_pseudos,
                self.ports[survivors + left].tolist(),
                sel_times.tolist(),
            )
        ]
        return hits, sel_times


class PreparedScanIndex:
    """Position index of a probe space under one permutation.

    Regular instances contribute single (position, instance) entries backed
    by column arrays; pseudo-hosts contribute rows covering every port of
    the space, merged into one sorted block.  Instances added later
    (honeypots) live in a small position-sorted overflow block answered by
    the same searchsorted path.
    """

    def __init__(
        self,
        internet: "SimulatedInternet",
        space: ProbeSpace,
        permutation: AffinePermutation,
        transport: str = "tcp",
    ) -> None:
        self.internet = internet
        self.space = space
        self.permutation = permutation
        self.transport = transport
        positions: List[int] = []
        refs: List[ServiceInstance] = []
        for inst in internet.workload.instances:
            if self._covers(inst):
                positions.append(permutation.position(space.flatten(inst.ip_index, inst.port)))
                refs.append(inst)
        order = np.argsort(np.asarray(positions, dtype=np.uint64)) if positions else np.array([], dtype=np.int64)
        sorted_positions = np.asarray(positions, dtype=np.uint64)[order]
        sorted_refs = [refs[i] for i in order]
        self._cols = _InstanceColumns(internet, sorted_positions, sorted_refs)
        self._pseudo_cols: Optional[_PseudoColumns] = None
        if transport == "tcp":
            self._pseudo_cols = self._index_pseudo_hosts()
        #: Late-added instances, kept sorted by position (same searchsorted
        #: path as the main columns; rebuilt on each add — adds are rare).
        self._extras: List[Tuple[int, ServiceInstance]] = []
        self._extra_cols: Optional[_InstanceColumns] = None

    # Back-compat views of the main columns (position array + refs).
    @property
    def _positions(self) -> np.ndarray:
        return self._cols.positions

    @property
    def _refs(self) -> List[ServiceInstance]:
        return self._cols.refs

    def _covers(self, inst: ServiceInstance) -> bool:
        return (
            inst.transport == self.transport
            and self.space.contains_port(inst.port)
            and self.space.contains_ip(inst.ip_index)
        )

    def _index_pseudo_hosts(self) -> Optional[_PseudoColumns]:
        ports = np.asarray(self.space.ports, dtype=np.int64)
        a, b = self.permutation.coefficients
        m = self.permutation.n
        a_inv = pow(a, -1, m)
        pseudos: List[PseudoHost] = []
        position_parts: List[np.ndarray] = []
        for pseudo in self.internet.workload.pseudo_hosts:
            if not self.space.contains_ip(pseudo.ip_index):
                continue
            # Elements for one IP are the contiguous block [base, base+P);
            # their positions form an arithmetic progression with stride
            # a_inv (mod m), which vectorizes without per-port flattening.
            base = self.space.flatten(pseudo.ip_index, self.space.ports[0])
            pos0 = (base - b) * a_inv % m
            k = np.arange(len(ports), dtype=np.uint64)
            # k*a_inv < ports * m < 2**64 for any in-scope space, and the
            # reduced term + pos0 < 2*m, so no uint64 wrap before the mods.
            position_parts.append((k * np.uint64(a_inv) % np.uint64(m) + np.uint64(pos0)) % np.uint64(m))
            pseudos.append(pseudo)
        if not pseudos:
            return None
        port_count = len(ports)
        all_positions = np.concatenate(position_parts)
        all_ports = np.tile(ports, len(pseudos))
        all_owners = np.repeat(np.arange(len(pseudos), dtype=np.int32), port_count)
        order = np.argsort(all_positions, kind="stable")
        net_ords = self.internet.topology.ordinals_of(
            np.asarray([p.ip_index for p in pseudos], dtype=np.int64)
        )
        return _PseudoColumns(
            all_positions[order], all_ports[order], all_owners[order], pseudos, net_ords
        )

    def add_instance(self, inst: ServiceInstance) -> bool:
        """Index a late-added instance (honeypots); False if out of space."""
        if not self._covers(inst):
            return False
        position = self.permutation.position(self.space.flatten(inst.ip_index, inst.port))
        insort(self._extras, (position, inst), key=lambda pair: pair[0])
        extra_positions = np.asarray([p for p, _ in self._extras], dtype=np.uint64)
        self._extra_cols = _InstanceColumns(self.internet, extra_positions, [i for _, i in self._extras])
        return True

    # ------------------------------------------------------------------

    def query(
        self,
        start: int,
        count: int,
        t0: float,
        rate: float,
        vantage: Vantage,
        scanner: str = "",
    ) -> List[ProbeHit]:
        """Responsive endpoints among positions [start, start+count).

        ``t0`` is the time the probe at ``start`` is sent and ``rate`` the
        probes-per-hour pace; each hit carries its interpolated probe time.
        Unreachable endpoints (loss, routing, geoblocking) are dropped, like
        lost SYN-ACKs in a stateless scan.
        """
        m = self.permutation.n
        count = min(count, m)
        ranges = _mod_ranges(start, count, m)
        internet = self.internet
        parts: List[_CollectedPart] = []
        for lo, hi in ranges:
            part = self._cols.collect(internet, lo, hi, start, m, t0, rate, vantage, scanner)
            if part is not None:
                parts.append(part)
            if self._pseudo_cols is not None:
                part = self._pseudo_cols.collect(internet, lo, hi, start, m, t0, rate, vantage)
                if part is not None:
                    parts.append(part)
        if self._extra_cols is not None:
            for lo, hi in ranges:
                part = self._extra_cols.collect(internet, lo, hi, start, m, t0, rate, vantage, scanner)
                if part is not None:
                    parts.append(part)
        if not parts:
            return []
        if len(parts) == 1:
            return parts[0][0]  # one block: already in probe-time order
        hits = [hit for block_hits, _ in parts for hit in block_hits]
        order = np.argsort(np.concatenate([times for _, times in parts]), kind="stable")
        return [hits[i] for i in order.tolist()]

    # -- retained scalar reference (the perf-regression equality gate) ------

    def query_reference(
        self,
        start: int,
        count: int,
        t0: float,
        rate: float,
        vantage: Vantage,
        scanner: str = "",
        log_contacts: bool = False,
    ) -> List[ProbeHit]:
        """Per-element scalar twin of :meth:`query`.

        Must return exactly the same hits as the vectorized path; honeypot
        contact logging is off by default so comparison runs do not pollute
        the contact log.
        """
        m = self.permutation.n
        count = min(count, m)
        ranges = _mod_ranges(start, count, m)
        internet = self.internet
        hits: List[ProbeHit] = []

        def offset_of(position: int) -> int:
            return (position - start) % m

        def scan_block(cols: _InstanceColumns, lo: int, hi: int) -> None:
            left = int(cols.positions.searchsorted(np.uint64(lo), side="left"))
            right = int(cols.positions.searchsorted(np.uint64(hi), side="left"))
            for i in range(left, right):
                inst = cols.refs[i]
                probe_time = t0 + offset_of(int(cols.positions[i])) / rate
                if not inst.alive_at(probe_time):
                    continue
                if not internet.reachable_scalar(inst.ip_index, vantage, probe_time, salt=inst.instance_id):
                    continue
                hits.append(ProbeHit(ProbeTarget(inst.ip_index, inst.port), probe_time, instance=inst))
                if inst.is_honeypot and log_contacts:
                    internet.log_honeypot_contact(inst, probe_time, scanner, "l4")

        for lo, hi in ranges:
            scan_block(self._cols, lo, hi)
            pseudo_cols = self._pseudo_cols
            if pseudo_cols is not None:
                p_left = int(pseudo_cols.positions.searchsorted(np.uint64(lo), side="left"))
                p_right = int(pseudo_cols.positions.searchsorted(np.uint64(hi), side="left"))
                for j in range(p_left, p_right):
                    pseudo = pseudo_cols.pseudos[int(pseudo_cols.owners[j])]
                    probe_time = t0 + offset_of(int(pseudo_cols.positions[j])) / rate
                    if not pseudo.alive_at(probe_time):
                        continue
                    if not internet.reachable_scalar(
                        pseudo.ip_index, vantage, probe_time, salt=-pseudo.pseudo_id - 1
                    ):
                        continue
                    hits.append(
                        ProbeHit(
                            ProbeTarget(pseudo.ip_index, int(pseudo_cols.ports[j])),
                            probe_time,
                            pseudo=pseudo,
                        )
                    )
        if self._extra_cols is not None:
            for lo, hi in ranges:
                scan_block(self._extra_cols, lo, hi)
        hits.sort(key=lambda h: h.probe_time)
        return hits


def _mod_ranges(start: int, count: int, m: int) -> List[Tuple[int, int]]:
    """[start, start+count) mod m as one or two half-open ranges."""
    start %= m
    if count >= m:
        return [(0, m)]
    end = start + count
    if end <= m:
        return [(start, end)]
    return [(start, m), (0, end - m)]


class SimConnection:
    """An established L4 connection to one simulated endpoint."""

    def __init__(
        self,
        internet: "SimulatedInternet",
        port: int,
        transport: str,
        time: float,
        instance: Optional[ServiceInstance] = None,
        pseudo: Optional[PseudoHost] = None,
        scanner: str = "",
        sni: Optional[str] = None,
    ) -> None:
        self.internet = internet
        self.port = port
        self.transport = transport
        self.time = time
        self.instance = instance
        self.pseudo = pseudo
        self.scanner = scanner
        self.sni = sni
        self._in_tls = False

    @property
    def in_tls(self) -> bool:
        return self._in_tls

    @property
    def _profile(self) -> Optional[ServerProfile]:
        return self.instance.profile if self.instance is not None else None

    def send(self, probe: Probe) -> Reply:
        if self.pseudo is not None:
            # Pseudo-hosts answer everything with the same opaque banner.
            return Reply("banner", "PSEUDO", {"banner": self.pseudo.banner})
        profile = self._profile
        if profile is None or profile.protocol == "NONE":
            return silence()
        if profile.tls is not None and not self._in_tls:
            # Plaintext data at a TLS endpoint: alert + close.  A passive
            # wait sees nothing (the server awaits a ClientHello).
            if probe.kind == "banner-wait":
                return silence()
            return reset()
        spec = self.internet.registry.get(profile.protocol)
        if self.sni is not None and probe.kind == "http-get" and "host" not in probe.payload:
            probe = Probe(probe.kind, dict(probe.payload, host=self.sni))
        return spec.respond(profile, probe)

    def start_tls(self) -> Optional[Reply]:
        profile = self._profile
        if profile is None or profile.tls is None:
            return None
        self._in_tls = True
        return tls_server_hello(profile.tls, sni=self.sni)


class _AliveIndex:
    """Interval index over instance lifetimes for stabbing queries.

    Instances sorted by birth: the candidates alive at ``t`` are the prefix
    with ``birth <= t`` (one binary search), filtered by a vectorized
    ``death > t`` mask — no full-workload Python scan per call.
    """

    __slots__ = ("size", "order", "births", "deaths", "real")

    def __init__(self, instances: Sequence[ServiceInstance]) -> None:
        self.size = len(instances)
        births = np.asarray([i.birth for i in instances], dtype=np.float64)
        self.order = np.argsort(births, kind="stable").astype(np.int64)
        self.births = births[self.order]
        deaths = np.asarray([i.death for i in instances], dtype=np.float64)
        self.deaths = deaths[self.order]
        real = np.asarray([i.protocol != "NONE" for i in instances], dtype=bool)
        self.real = real[self.order]

    def alive_indices(self, t: float, real_only: bool) -> np.ndarray:
        """Workload indices of instances alive at ``t``, in workload order."""
        j = int(np.searchsorted(self.births, t, side="right"))
        mask = self.deaths[:j] > t
        if real_only:
            mask &= self.real[:j]
        selected = self.order[:j][mask]
        selected.sort()
        return selected


class SimulatedInternet:
    """Ground-truth population plus visibility physics."""

    #: Probability a network is unreachable from a given vantage for a week
    #: (routing anomalies / transient blocking, per Wan et al.).
    ROUTING_BLOCK_RATE = 0.02

    def __init__(
        self,
        space: AddressSpace,
        topology: Topology,
        workload: Workload,
        registry: ProtocolRegistry | None = None,
        seed: int = 0,
    ) -> None:
        self.space = space
        self.topology = topology
        self.workload = workload
        self.registry = registry or default_registry()
        self.seed = seed
        self.honeypot_contacts: List[HoneypotContact] = []
        self._by_binding: Dict[Tuple[int, int], List[ServiceInstance]] = {}
        self._by_device: Dict[int, List[ServiceInstance]] = {}
        for inst in workload.instances:
            self._by_binding.setdefault(inst.key, []).append(inst)
            self._by_device.setdefault(inst.device_id, []).append(inst)
        for chain in self._by_binding.values():
            chain.sort(key=lambda i: i.birth)
        self._pseudo_by_ip: Dict[int, PseudoHost] = {p.ip_index: p for p in workload.pseudo_hosts}
        self._webprops_by_name: Dict[str, WebProperty] = {p.name: p for p in workload.web_properties}
        self._alive_index: Optional[_AliveIndex] = None
        #: (vantage_id, week) -> per-network routing-block mask.
        self._routing_block_masks: Dict[Tuple[int, int], np.ndarray] = {}
        # Dual-stack: ~60% of devices fronting web properties also hold an
        # IPv6 address, discoverable only through DNS on known names (the
        # paper does not run comprehensive IPv6 scans either).
        self._v6_by_device: Dict[int, str] = {}
        self._device_by_v6: Dict[str, int] = {}
        for prop in workload.web_properties:
            if prop.device_id in self._v6_by_device:
                continue
            if _mix64(seed ^ prop.device_id * 0xD1CE) % 100 < 60:
                address = f"2001:db8::{prop.device_id:x}"
                self._v6_by_device[prop.device_id] = address
                self._device_by_v6[address] = prop.device_id
        self._next_instance_id = max((i.instance_id for i in workload.instances), default=0) + 1

    # -- population access -------------------------------------------------

    def instance_at(self, ip_index: int, port: int, t: float) -> Optional[ServiceInstance]:
        for inst in self._by_binding.get((ip_index, port), ()):
            if inst.alive_at(t):
                return inst
        return None

    def pseudo_at(self, ip_index: int, t: float) -> Optional[PseudoHost]:
        pseudo = self._pseudo_by_ip.get(ip_index)
        if pseudo is not None and pseudo.alive_at(t):
            return pseudo
        return None

    def _alive(self) -> _AliveIndex:
        index = self._alive_index
        if index is None or index.size != len(self.workload.instances):
            index = _AliveIndex(self.workload.instances)
            self._alive_index = index
        return index

    def services_alive_at(self, t: float) -> List[ServiceInstance]:
        instances = self.workload.instances
        return [instances[i] for i in self._alive().alive_indices(t, real_only=True)]

    def instances_alive_at(self, t: float) -> List[ServiceInstance]:
        """All live instances at ``t``, phantoms included (indexed query)."""
        instances = self.workload.instances
        return [instances[i] for i in self._alive().alive_indices(t, real_only=False)]

    def device_instances(self, device_id: int) -> List[ServiceInstance]:
        return list(self._by_device.get(device_id, ()))

    def add_instance(self, inst: ServiceInstance) -> None:
        """Inject an instance at runtime (honeypot deployments)."""
        self.workload.instances.append(inst)
        self._by_binding.setdefault(inst.key, []).append(inst)
        self._by_binding[inst.key].sort(key=lambda i: i.birth)
        self._by_device.setdefault(inst.device_id, []).append(inst)
        self._alive_index = None

    def allocate_instance_id(self) -> int:
        self._next_instance_id += 1
        return self._next_instance_id

    # -- reachability -------------------------------------------------------

    def _reachable_kernel(
        self,
        net_ords: np.ndarray,
        salts: np.ndarray,
        vantage: Vantage,
        times: np.ndarray,
    ) -> np.ndarray:
        """Vectorized visibility physics over pre-resolved network ordinals.

        ``net_ords`` and ``salts`` must be arrays (broadcastable against
        ``times``); ``salts`` must already be ``uint64`` — the two's
        complement of negative salts, exactly as the scalar path masks
        them.  All uint64 arithmetic wraps mod 2**64, matching the scalar
        mixer's explicit masking.
        """
        topology = self.topology
        geo_blocked = topology.region_blocked_array(vantage.region)[net_ords]
        weeks = np.floor_divide(times, 7 * 24.0).astype(np.int64)
        week_lo = int(weeks.min()) if weeks.size else 0
        week_hi = int(weeks.max()) if weeks.size else 0
        if week_lo == week_hi:
            # The common case — a segment spans one routing week, and the
            # block draw only depends on (network, vantage, week): gather
            # from a cached per-network mask instead of re-mixing.
            routing_blocked = self._routing_block_mask(vantage, week_lo)[net_ords]
        else:
            net_ids = topology.network_id_array[net_ords].view(np.uint64)
            block_base = np.uint64((self.seed ^ vantage.vantage_id * 0x79B9) & MASK64)
            block_draw = mix64_array(block_base ^ net_ids * np.uint64(0x9E37) ^ weeks.view(np.uint64))
            routing_blocked = (block_draw % np.uint64(10_000)) < self.ROUTING_BLOCK_RATE * 10_000
        visible = ~(geo_blocked | routing_blocked)
        if vantage.loss_rate <= 0.0:
            return visible  # threshold 0: every loss draw passes
        windows = np.floor_divide(times, 6.0).astype(np.int64).view(np.uint64)
        loss_base = np.uint64((self.seed ^ vantage.vantage_id * 0x85EB) & MASK64)
        loss_draw = mix64_array(loss_base ^ salts * np.uint64(0xC2B2) ^ windows)
        delivered = (loss_draw % np.uint64(10_000)) >= vantage.loss_rate * 10_000
        return visible & delivered

    def _routing_block_mask(self, vantage: Vantage, week: int) -> np.ndarray:
        """Per-network routing-block mask for one (vantage, week)."""
        key = (vantage.vantage_id, week)
        mask = self._routing_block_masks.get(key)
        if mask is None:
            base = np.uint64((self.seed ^ vantage.vantage_id * 0x79B9 ^ (week & MASK64)) & MASK64)
            ids = self.topology.network_id_array.view(np.uint64)
            draws = mix64_array(base ^ ids * np.uint64(0x9E37))
            mask = (draws % np.uint64(10_000)) < self.ROUTING_BLOCK_RATE * 10_000
            self._routing_block_masks[key] = mask
        return mask

    def reachable_many(
        self,
        ip_indices,
        vantage: Vantage,
        times,
        salts=None,
    ) -> np.ndarray:
        """Batched :meth:`reachable`: boolean array over aligned inputs.

        ``ip_indices``, ``times``, and ``salts`` broadcast against each
        other (any may be scalar); salts may be negative, matching the
        pseudo-host convention.
        """
        ips = np.asarray(ip_indices, dtype=np.int64)
        times_arr = np.asarray(times, dtype=np.float64)
        if salts is None:
            salts_u = np.zeros(1, dtype=np.uint64)
        else:
            salts_arr = np.asarray(salts)
            salts_u = salts_arr if salts_arr.dtype == np.uint64 else salts_arr.astype(np.int64).view(np.uint64)
        net_ords = self.topology.ordinals_of(ips)
        return self._reachable_kernel(net_ords, np.atleast_1d(salts_u), vantage, times_arr)

    def reachable(self, ip_index: int, vantage: Vantage, t: float, salt: int = 0) -> bool:
        """Whether a probe from ``vantage`` reaches ``ip_index`` at ``t``."""
        return bool(self.reachable_many([ip_index], vantage, [t], [salt])[0])

    def reachable_scalar(self, ip_index: int, vantage: Vantage, t: float, salt: int = 0) -> bool:
        """Retained pure-Python reference for the vectorized kernel."""
        network = self.topology.network_of(ip_index)
        if vantage.region in network.blocked_regions:
            return False
        week = int(t // (7 * 24.0))
        block_draw = _mix64(self.seed ^ network.network_id * 0x9E37 ^ vantage.vantage_id * 0x79B9 ^ week)
        if (block_draw % 10_000) < self.ROUTING_BLOCK_RATE * 10_000:
            return False
        window = int(t // 6.0)  # transient loss re-rolls every 6 hours
        loss_draw = _mix64(self.seed ^ salt * 0xC2B2 ^ vantage.vantage_id * 0x85EB ^ window)
        return (loss_draw % 10_000) >= vantage.loss_rate * 10_000

    # -- connections ----------------------------------------------------------

    def connect(
        self,
        ip_index: int,
        port: int,
        t: float,
        vantage: Vantage,
        transport: str = "tcp",
        scanner: str = "",
        sni: Optional[str] = None,
    ) -> Optional[SimConnection]:
        """Open a connection; None when nothing answers (down/unreachable)."""
        inst = self.instance_at(ip_index, port, t)
        if inst is not None and inst.transport == transport:
            if not self.reachable(ip_index, vantage, t, salt=inst.instance_id):
                return None
            if inst.is_honeypot:
                self.log_honeypot_contact(inst, t, scanner, "l7")
            return SimConnection(self, port, transport, t, instance=inst, scanner=scanner, sni=sni)
        if transport == "tcp":
            pseudo = self.pseudo_at(ip_index, t)
            if pseudo is not None and self.reachable(ip_index, vantage, t, salt=-pseudo.pseudo_id - 1):
                return SimConnection(self, port, transport, t, pseudo=pseudo, scanner=scanner)
        return None

    # -- names ---------------------------------------------------------------

    def resolve_name(self, name: str, t: float) -> Optional[Tuple[int, int]]:
        """DNS: resolve a web-property name to its current (ip, port)."""
        prop = self._webprops_by_name.get(name)
        if prop is None:
            return None
        for inst in self._by_device.get(prop.device_id, ()):
            if inst.alive_at(t) and inst.protocol == "HTTP":
                return (inst.ip_index, inst.port)
        return None

    def web_property(self, name: str) -> Optional[WebProperty]:
        return self._webprops_by_name.get(name)

    def resolve_name_v6(self, name: str, t: float) -> Optional[str]:
        """DNS AAAA: the IPv6 address of a dual-stack web property."""
        prop = self._webprops_by_name.get(name)
        if prop is None:
            return None
        address = self._v6_by_device.get(prop.device_id)
        if address is None:
            return None
        if any(i.alive_at(t) and i.protocol == "HTTP" for i in self._by_device.get(prop.device_id, ())):
            return address
        return None

    def connect_v6(
        self,
        address: str,
        t: float,
        vantage: Vantage,
        scanner: str = "",
        sni: Optional[str] = None,
    ) -> Optional[SimConnection]:
        """Connect to a dual-stack device over IPv6 (port follows the
        fronting v4 service; dual-stack serves the same content)."""
        device_id = self._device_by_v6.get(address)
        if device_id is None:
            return None
        for inst in self._by_device.get(device_id, ()):
            if inst.alive_at(t) and inst.protocol == "HTTP":
                if not self.reachable(inst.ip_index, vantage, t, salt=inst.instance_id ^ 0x6666):
                    return None
                return SimConnection(self, inst.port, "tcp", t, instance=inst, scanner=scanner, sni=sni)
        return None

    @property
    def dual_stack_device_count(self) -> int:
        return len(self._v6_by_device)

    # -- scanning -------------------------------------------------------------

    def prepare_scan(
        self, space: ProbeSpace, permutation: AffinePermutation, transport: str = "tcp"
    ) -> PreparedScanIndex:
        return PreparedScanIndex(self, space, permutation, transport)

    # -- honeypots --------------------------------------------------------------

    def log_honeypot_contact(self, inst: ServiceInstance, t: float, scanner: str, layer: str) -> None:
        self.honeypot_contacts.append(
            HoneypotContact(time=t, scanner=scanner, ip_index=inst.ip_index, port=inst.port, layer=layer)
        )
