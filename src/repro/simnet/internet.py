"""The simulated Internet: probe-level and connection-level access to the
ground-truth population.

Two access paths mirror the paper's two scan phases:

* **L4 segment queries** — a scan tier walks a permutation over a probe
  space; :class:`PreparedScanIndex` answers "which live endpoints fall in
  permutation positions [s, s+L)?" in O(log n + hits) using the inverse
  permutation, so full-space scans never enumerate dead probes.

* **L7 connections** — :meth:`SimulatedInternet.connect` establishes a
  connection to one endpoint, applying vantage-dependent reachability
  (packet loss, weekly routing anomalies, geoblocking), and returns a
  :class:`SimConnection` speaking the probe/reply protocol model (with TLS
  session gating).

Honeypot contacts are logged with the observing engine's identity, feeding
the Table 5 time-to-discovery experiment.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.net import AddressSpace, AffinePermutation, ProbeSpace, ProbeTarget
from repro.net.cyclic import _mix64
from repro.protocols.base import Probe, Reply, ServerProfile, reset, silence
from repro.protocols.registry import ProtocolRegistry, default_registry
from repro.protocols.tlslayer import tls_server_hello
from repro.simnet.instances import PseudoHost, ServiceInstance, WebProperty
from repro.simnet.topology import Topology
from repro.simnet.workload import Workload

__all__ = ["Vantage", "ProbeHit", "PreparedScanIndex", "SimConnection", "SimulatedInternet"]


@dataclass(frozen=True, slots=True)
class Vantage:
    """A scanning vantage point's network identity."""

    name: str
    region: str           # "us" | "eu" | "asia"
    provider: str = ""
    loss_rate: float = 0.03
    vantage_id: int = 0


@dataclass(slots=True)
class ProbeHit:
    """One responsive L4 probe inside a queried segment."""

    target: ProbeTarget
    probe_time: float
    instance: Optional[ServiceInstance] = None
    pseudo: Optional[PseudoHost] = None


@dataclass(slots=True)
class HoneypotContact:
    """A probe or connection observed by a honeypot."""

    time: float
    scanner: str
    ip_index: int
    port: int
    layer: str  # "l4" or "l7"


class PreparedScanIndex:
    """Position index of a probe space under one permutation.

    Regular instances contribute single (position, instance) entries;
    pseudo-hosts contribute one sorted position array per host covering
    every port of the space.  Instances added later (honeypots) land in a
    small linear-scan overflow list.
    """

    def __init__(
        self,
        internet: "SimulatedInternet",
        space: ProbeSpace,
        permutation: AffinePermutation,
        transport: str = "tcp",
    ) -> None:
        self.internet = internet
        self.space = space
        self.permutation = permutation
        self.transport = transport
        positions: List[int] = []
        refs: List[ServiceInstance] = []
        for inst in internet.workload.instances:
            if self._covers(inst):
                positions.append(permutation.position(space.flatten(inst.ip_index, inst.port)))
                refs.append(inst)
        order = np.argsort(np.asarray(positions, dtype=np.uint64)) if positions else np.array([], dtype=np.int64)
        self._positions = np.asarray(positions, dtype=np.uint64)[order]
        self._refs: List[ServiceInstance] = [refs[i] for i in order]
        self._pseudo: List[Tuple[PseudoHost, np.ndarray, np.ndarray]] = []
        if transport == "tcp":
            self._index_pseudo_hosts()
        self._extras: List[Tuple[int, ServiceInstance]] = []

    def _covers(self, inst: ServiceInstance) -> bool:
        return (
            inst.transport == self.transport
            and self.space.contains_port(inst.port)
            and self.space.contains_ip(inst.ip_index)
        )

    def _index_pseudo_hosts(self) -> None:
        ports = np.asarray(self.space.ports, dtype=np.uint64)
        a, b = self.permutation.coefficients
        m = self.permutation.n
        a_inv = pow(a, -1, m)
        for pseudo in self.internet.workload.pseudo_hosts:
            if not self.space.contains_ip(pseudo.ip_index):
                continue
            # Elements for one IP are the contiguous block [base, base+P);
            # their positions form an arithmetic progression with stride
            # a_inv (mod m), which vectorizes without per-port flattening.
            base = self.space.flatten(pseudo.ip_index, self.space.ports[0])
            pos0 = (base - b) * a_inv % m
            k = np.arange(len(ports), dtype=np.uint64)
            positions = (np.uint64(pos0) + k * np.uint64(a_inv)) % np.uint64(m)
            order = np.argsort(positions)
            self._pseudo.append((pseudo, positions[order], ports[order]))

    def add_instance(self, inst: ServiceInstance) -> bool:
        """Index a late-added instance (honeypots); False if out of space."""
        if not self._covers(inst):
            return False
        position = self.permutation.position(self.space.flatten(inst.ip_index, inst.port))
        self._extras.append((position, inst))
        return True

    # ------------------------------------------------------------------

    def query(
        self,
        start: int,
        count: int,
        t0: float,
        rate: float,
        vantage: Vantage,
        scanner: str = "",
    ) -> List[ProbeHit]:
        """Responsive endpoints among positions [start, start+count).

        ``t0`` is the time the probe at ``start`` is sent and ``rate`` the
        probes-per-hour pace; each hit carries its interpolated probe time.
        Unreachable endpoints (loss, routing, geoblocking) are dropped, like
        lost SYN-ACKs in a stateless scan.
        """
        m = self.permutation.n
        count = min(count, m)
        hits: List[ProbeHit] = []

        def offset_of(position: int) -> int:
            return (position - start) % m

        for lo, hi in _mod_ranges(start, count, m):
            left = int(np.searchsorted(self._positions, np.uint64(lo), side="left"))
            right = int(np.searchsorted(self._positions, np.uint64(hi), side="left"))
            for i in range(left, right):
                inst = self._refs[i]
                probe_time = t0 + offset_of(int(self._positions[i])) / rate
                if not inst.alive_at(probe_time):
                    continue
                if not self.internet.reachable(inst.ip_index, vantage, probe_time, salt=inst.instance_id):
                    continue
                target = ProbeTarget(inst.ip_index, inst.port)
                hits.append(ProbeHit(target, probe_time, instance=inst))
                if inst.is_honeypot:
                    self.internet.log_honeypot_contact(inst, probe_time, scanner, "l4")
            for pseudo, positions, ports in self._pseudo:
                p_left = int(np.searchsorted(positions, np.uint64(lo), side="left"))
                p_right = int(np.searchsorted(positions, np.uint64(hi), side="left"))
                for j in range(p_left, p_right):
                    probe_time = t0 + offset_of(int(positions[j])) / rate
                    if not pseudo.alive_at(probe_time):
                        continue
                    if not self.internet.reachable(pseudo.ip_index, vantage, probe_time, salt=-pseudo.pseudo_id - 1):
                        continue
                    hits.append(
                        ProbeHit(ProbeTarget(pseudo.ip_index, int(ports[j])), probe_time, pseudo=pseudo)
                    )
        for position, inst in self._extras:
            if any(lo <= position < hi for lo, hi in _mod_ranges(start, count, m)):
                probe_time = t0 + offset_of(position) / rate
                if inst.alive_at(probe_time) and self.internet.reachable(
                    inst.ip_index, vantage, probe_time, salt=inst.instance_id
                ):
                    hits.append(ProbeHit(ProbeTarget(inst.ip_index, inst.port), probe_time, instance=inst))
                    if inst.is_honeypot:
                        self.internet.log_honeypot_contact(inst, probe_time, scanner, "l4")
        hits.sort(key=lambda h: h.probe_time)
        return hits


def _mod_ranges(start: int, count: int, m: int) -> List[Tuple[int, int]]:
    """[start, start+count) mod m as one or two half-open ranges."""
    start %= m
    if count >= m:
        return [(0, m)]
    end = start + count
    if end <= m:
        return [(start, end)]
    return [(start, m), (0, end - m)]


class SimConnection:
    """An established L4 connection to one simulated endpoint."""

    def __init__(
        self,
        internet: "SimulatedInternet",
        port: int,
        transport: str,
        time: float,
        instance: Optional[ServiceInstance] = None,
        pseudo: Optional[PseudoHost] = None,
        scanner: str = "",
        sni: Optional[str] = None,
    ) -> None:
        self.internet = internet
        self.port = port
        self.transport = transport
        self.time = time
        self.instance = instance
        self.pseudo = pseudo
        self.scanner = scanner
        self.sni = sni
        self._in_tls = False

    @property
    def in_tls(self) -> bool:
        return self._in_tls

    @property
    def _profile(self) -> Optional[ServerProfile]:
        return self.instance.profile if self.instance is not None else None

    def send(self, probe: Probe) -> Reply:
        if self.pseudo is not None:
            # Pseudo-hosts answer everything with the same opaque banner.
            return Reply("banner", "PSEUDO", {"banner": self.pseudo.banner})
        profile = self._profile
        if profile is None or profile.protocol == "NONE":
            return silence()
        if profile.tls is not None and not self._in_tls:
            # Plaintext data at a TLS endpoint: alert + close.  A passive
            # wait sees nothing (the server awaits a ClientHello).
            if probe.kind == "banner-wait":
                return silence()
            return reset()
        spec = self.internet.registry.get(profile.protocol)
        if self.sni is not None and probe.kind == "http-get" and "host" not in probe.payload:
            probe = Probe(probe.kind, dict(probe.payload, host=self.sni))
        return spec.respond(profile, probe)

    def start_tls(self) -> Optional[Reply]:
        profile = self._profile
        if profile is None or profile.tls is None:
            return None
        self._in_tls = True
        return tls_server_hello(profile.tls, sni=self.sni)


class SimulatedInternet:
    """Ground-truth population plus visibility physics."""

    #: Probability a network is unreachable from a given vantage for a week
    #: (routing anomalies / transient blocking, per Wan et al.).
    ROUTING_BLOCK_RATE = 0.02

    def __init__(
        self,
        space: AddressSpace,
        topology: Topology,
        workload: Workload,
        registry: ProtocolRegistry | None = None,
        seed: int = 0,
    ) -> None:
        self.space = space
        self.topology = topology
        self.workload = workload
        self.registry = registry or default_registry()
        self.seed = seed
        self.honeypot_contacts: List[HoneypotContact] = []
        self._by_binding: Dict[Tuple[int, int], List[ServiceInstance]] = {}
        self._by_device: Dict[int, List[ServiceInstance]] = {}
        for inst in workload.instances:
            self._by_binding.setdefault(inst.key, []).append(inst)
            self._by_device.setdefault(inst.device_id, []).append(inst)
        for chain in self._by_binding.values():
            chain.sort(key=lambda i: i.birth)
        self._pseudo_by_ip: Dict[int, PseudoHost] = {p.ip_index: p for p in workload.pseudo_hosts}
        self._webprops_by_name: Dict[str, WebProperty] = {p.name: p for p in workload.web_properties}
        # Dual-stack: ~60% of devices fronting web properties also hold an
        # IPv6 address, discoverable only through DNS on known names (the
        # paper does not run comprehensive IPv6 scans either).
        self._v6_by_device: Dict[int, str] = {}
        self._device_by_v6: Dict[str, int] = {}
        for prop in workload.web_properties:
            if prop.device_id in self._v6_by_device:
                continue
            if _mix64(seed ^ prop.device_id * 0xD1CE) % 100 < 60:
                address = f"2001:db8::{prop.device_id:x}"
                self._v6_by_device[prop.device_id] = address
                self._device_by_v6[address] = prop.device_id
        self._next_instance_id = max((i.instance_id for i in workload.instances), default=0) + 1

    # -- population access -------------------------------------------------

    def instance_at(self, ip_index: int, port: int, t: float) -> Optional[ServiceInstance]:
        for inst in self._by_binding.get((ip_index, port), ()):
            if inst.alive_at(t):
                return inst
        return None

    def pseudo_at(self, ip_index: int, t: float) -> Optional[PseudoHost]:
        pseudo = self._pseudo_by_ip.get(ip_index)
        if pseudo is not None and pseudo.alive_at(t):
            return pseudo
        return None

    def services_alive_at(self, t: float) -> List[ServiceInstance]:
        return self.workload.services_alive_at(t)

    def device_instances(self, device_id: int) -> List[ServiceInstance]:
        return list(self._by_device.get(device_id, ()))

    def add_instance(self, inst: ServiceInstance) -> None:
        """Inject an instance at runtime (honeypot deployments)."""
        self.workload.instances.append(inst)
        self._by_binding.setdefault(inst.key, []).append(inst)
        self._by_binding[inst.key].sort(key=lambda i: i.birth)
        self._by_device.setdefault(inst.device_id, []).append(inst)

    def allocate_instance_id(self) -> int:
        self._next_instance_id += 1
        return self._next_instance_id

    # -- reachability -------------------------------------------------------

    def reachable(self, ip_index: int, vantage: Vantage, t: float, salt: int = 0) -> bool:
        """Whether a probe from ``vantage`` reaches ``ip_index`` at ``t``."""
        network = self.topology.network_of(ip_index)
        if vantage.region in network.blocked_regions:
            return False
        week = int(t // (7 * 24.0))
        block_draw = _mix64(self.seed ^ network.network_id * 0x9E37 ^ vantage.vantage_id * 0x79B9 ^ week)
        if (block_draw % 10_000) < self.ROUTING_BLOCK_RATE * 10_000:
            return False
        window = int(t // 6.0)  # transient loss re-rolls every 6 hours
        loss_draw = _mix64(self.seed ^ salt * 0xC2B2 ^ vantage.vantage_id * 0x85EB ^ window)
        return (loss_draw % 10_000) >= vantage.loss_rate * 10_000

    # -- connections ----------------------------------------------------------

    def connect(
        self,
        ip_index: int,
        port: int,
        t: float,
        vantage: Vantage,
        transport: str = "tcp",
        scanner: str = "",
        sni: Optional[str] = None,
    ) -> Optional[SimConnection]:
        """Open a connection; None when nothing answers (down/unreachable)."""
        inst = self.instance_at(ip_index, port, t)
        if inst is not None and inst.transport == transport:
            if not self.reachable(ip_index, vantage, t, salt=inst.instance_id):
                return None
            if inst.is_honeypot:
                self.log_honeypot_contact(inst, t, scanner, "l7")
            return SimConnection(self, port, transport, t, instance=inst, scanner=scanner, sni=sni)
        if transport == "tcp":
            pseudo = self.pseudo_at(ip_index, t)
            if pseudo is not None and self.reachable(ip_index, vantage, t, salt=-pseudo.pseudo_id - 1):
                return SimConnection(self, port, transport, t, pseudo=pseudo, scanner=scanner)
        return None

    # -- names ---------------------------------------------------------------

    def resolve_name(self, name: str, t: float) -> Optional[Tuple[int, int]]:
        """DNS: resolve a web-property name to its current (ip, port)."""
        prop = self._webprops_by_name.get(name)
        if prop is None:
            return None
        for inst in self._by_device.get(prop.device_id, ()):
            if inst.alive_at(t) and inst.protocol == "HTTP":
                return (inst.ip_index, inst.port)
        return None

    def web_property(self, name: str) -> Optional[WebProperty]:
        return self._webprops_by_name.get(name)

    def resolve_name_v6(self, name: str, t: float) -> Optional[str]:
        """DNS AAAA: the IPv6 address of a dual-stack web property."""
        prop = self._webprops_by_name.get(name)
        if prop is None:
            return None
        address = self._v6_by_device.get(prop.device_id)
        if address is None:
            return None
        if any(i.alive_at(t) and i.protocol == "HTTP" for i in self._by_device.get(prop.device_id, ())):
            return address
        return None

    def connect_v6(
        self,
        address: str,
        t: float,
        vantage: Vantage,
        scanner: str = "",
        sni: Optional[str] = None,
    ) -> Optional[SimConnection]:
        """Connect to a dual-stack device over IPv6 (port follows the
        fronting v4 service; dual-stack serves the same content)."""
        device_id = self._device_by_v6.get(address)
        if device_id is None:
            return None
        for inst in self._by_device.get(device_id, ()):
            if inst.alive_at(t) and inst.protocol == "HTTP":
                if not self.reachable(inst.ip_index, vantage, t, salt=inst.instance_id ^ 0x6666):
                    return None
                return SimConnection(self, inst.port, "tcp", t, instance=inst, scanner=scanner, sni=sni)
        return None

    @property
    def dual_stack_device_count(self) -> int:
        return len(self._v6_by_device)

    # -- scanning -------------------------------------------------------------

    def prepare_scan(
        self, space: ProbeSpace, permutation: AffinePermutation, transport: str = "tcp"
    ) -> PreparedScanIndex:
        return PreparedScanIndex(self, space, permutation, transport)

    # -- honeypots --------------------------------------------------------------

    def log_honeypot_contact(self, inst: ServiceInstance, t: float, scanner: str, layer: str) -> None:
        self.honeypot_contacts.append(
            HoneypotContact(time=t, scanner=scanner, ip_index=inst.ip_index, port=inst.port, layer=layer)
        )
