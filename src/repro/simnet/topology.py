"""Synthetic Internet topology: networks, ASes, countries, cloud regions.

The scaled address space is partitioned into networks of varying size, each
assigned an AS number, a country, an operator kind (cloud / residential /
business / hosting), and visibility quirks (regional routing blocks,
geoblocking).  The topology is the basis for the GeoIP and WHOIS registries
used during read-side enrichment, and for the cloud-targeted scan tier.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.net import AddressSpace

__all__ = ["NetworkKind", "Network", "Topology", "TopologyConfig", "COUNTRY_WEIGHTS"]


#: Country mix loosely following where Internet services actually live;
#: includes the Table 3 countries (US, CN, DE) with US-heavy weighting.
COUNTRY_WEIGHTS: List[Tuple[str, float]] = [
    ("US", 0.36),
    ("CN", 0.10),
    ("DE", 0.07),
    ("JP", 0.05),
    ("GB", 0.05),
    ("FR", 0.04),
    ("KR", 0.04),
    ("NL", 0.04),
    ("RU", 0.04),
    ("BR", 0.04),
    ("IN", 0.04),
    ("CA", 0.03),
    ("SG", 0.03),
    ("AU", 0.02),
    ("IT", 0.02),
    ("OTHER", 0.03),
]

#: Scanner regions (where PoPs sit) used for geo/routing visibility.
REGIONS = ("us", "eu", "asia")

_COUNTRY_REGION = {
    "US": "us", "CA": "us", "BR": "us",
    "DE": "eu", "GB": "eu", "FR": "eu", "NL": "eu", "RU": "eu", "IT": "eu",
    "CN": "asia", "JP": "asia", "KR": "asia", "SG": "asia", "AU": "asia", "IN": "asia",
    "OTHER": "eu",
}


class NetworkKind:
    """Operator categories with distinct churn and density profiles."""

    CLOUD = "cloud"
    RESIDENTIAL = "residential"
    BUSINESS = "business"
    HOSTING = "hosting"
    MOBILE = "mobile"

    ALL = (CLOUD, RESIDENTIAL, BUSINESS, HOSTING, MOBILE)


@dataclass(slots=True)
class Network:
    """One allocated network block within the scaled space."""

    network_id: int
    start: int              # first address index (inclusive)
    stop: int               # last address index (exclusive)
    asn: int
    as_name: str
    country: str
    kind: str
    #: Scanner regions this network persistently refuses traffic from
    #: (geoblocking / national filtering), if any.
    blocked_regions: Tuple[str, ...] = ()
    organization: str = ""

    @property
    def size(self) -> int:
        return self.stop - self.start

    def __contains__(self, ip_index: int) -> bool:
        return self.start <= ip_index < self.stop


@dataclass(slots=True)
class TopologyConfig:
    """Knobs controlling topology synthesis."""

    seed: int = 0
    #: Fraction of the space allotted to each network kind.
    kind_shares: Dict[str, float] = field(
        default_factory=lambda: {
            NetworkKind.CLOUD: 0.16,
            NetworkKind.RESIDENTIAL: 0.38,
            NetworkKind.BUSINESS: 0.26,
            NetworkKind.HOSTING: 0.12,
            NetworkKind.MOBILE: 0.08,
        }
    )
    #: log2 of the min/max network block size.
    min_block_bits: int = 8
    max_block_bits: int = 12
    #: Probability a network persistently blocks one foreign scanner region.
    geoblock_rate: float = 0.02


_AS_NAMES = {
    NetworkKind.CLOUD: ("NIMBUS-CLOUD", "STRATUS-COMPUTE", "VAPOR-PLATFORM", "CUMULUS-DC"),
    NetworkKind.RESIDENTIAL: ("HOMENET-ISP", "FIBERCAST", "CABLELINK", "DSL-UNION"),
    NetworkKind.BUSINESS: ("ENTERPRISE-NET", "CORPLINK", "METRO-BIZ", "OFFICE-WAN"),
    NetworkKind.HOSTING: ("RACKFARM", "COLOCORE", "SERVERBARN", "DEDIBOX-NET"),
    NetworkKind.MOBILE: ("LTE-CARRIER", "CELLNET-5G", "MOBILFUNK", "WIRELESS-WAN"),
}


class Topology:
    """The partitioned address space with lookup helpers."""

    def __init__(self, space: AddressSpace, networks: List[Network]) -> None:
        self.space = space
        self.networks = networks
        self._starts = [n.start for n in networks]
        # Columnar caches for the vectorized reachability kernels.
        self._starts_arr = np.asarray(self._starts, dtype=np.int64)
        self._network_ids = np.asarray([n.network_id for n in networks], dtype=np.int64)
        self._region_blocked: Dict[str, np.ndarray] = {}

    @classmethod
    def generate(cls, space: AddressSpace, config: TopologyConfig | None = None) -> "Topology":
        """Carve the space into networks according to ``config``."""
        config = config or TopologyConfig()
        rng = random.Random(config.seed)
        kinds = list(config.kind_shares.keys())
        kind_weights = [config.kind_shares[k] for k in kinds]
        country_names = [c for c, _ in COUNTRY_WEIGHTS]
        country_weights = [w for _, w in COUNTRY_WEIGHTS]

        networks: List[Network] = []
        cursor = 0
        network_id = 0
        while cursor < space.size:
            bits = rng.randint(config.min_block_bits, config.max_block_bits)
            block = min(1 << bits, space.size - cursor)
            kind = rng.choices(kinds, weights=kind_weights, k=1)[0]
            country = rng.choices(country_names, weights=country_weights, k=1)[0]
            blocked: Tuple[str, ...] = ()
            if rng.random() < config.geoblock_rate:
                home = _COUNTRY_REGION.get(country, "eu")
                foreign = [r for r in REGIONS if r != home]
                blocked = (rng.choice(foreign),)
            asn = 64512 + network_id  # private-use ASN range, recycled
            as_name = rng.choice(_AS_NAMES[kind])
            networks.append(
                Network(
                    network_id=network_id,
                    start=cursor,
                    stop=cursor + block,
                    asn=asn,
                    as_name=f"{as_name}-{network_id}",
                    country=country,
                    kind=kind,
                    blocked_regions=blocked,
                    organization=f"{as_name.title().replace('-', ' ')} #{network_id}",
                )
            )
            cursor += block
            network_id += 1
        return cls(space, networks)

    def network_of(self, ip_index: int) -> Network:
        """The network owning an address index."""
        if not 0 <= ip_index < self.space.size:
            raise ValueError(f"address index {ip_index} outside the space")
        i = bisect_right(self._starts, ip_index) - 1
        return self.networks[i]

    def ordinals_of(self, ip_indices: np.ndarray) -> np.ndarray:
        """Vectorized ``network_of``: positions into ``self.networks``.

        Callers are expected to pass in-space indices (as ``network_of``
        enforces one at a time); out-of-range inputs are clipped.
        """
        ords = np.searchsorted(self._starts_arr, np.asarray(ip_indices, dtype=np.int64), side="right") - 1
        return np.clip(ords, 0, len(self.networks) - 1)

    @property
    def network_id_array(self) -> np.ndarray:
        """``network_id`` per ordinal (aligned with ``self.networks``)."""
        return self._network_ids

    def region_blocked_array(self, region: str) -> np.ndarray:
        """Boolean mask per network ordinal: does it geoblock ``region``?"""
        mask = self._region_blocked.get(region)
        if mask is None:
            mask = np.asarray([region in n.blocked_regions for n in self.networks], dtype=bool)
            self._region_blocked[region] = mask
        return mask

    def networks_of_kind(self, kind: str) -> List[Network]:
        return [n for n in self.networks if n.kind == kind]

    def intervals_of_kind(self, kind: str) -> List[Tuple[int, int]]:
        """Sorted (start, stop) intervals for a network kind (cloud tier)."""
        return [(n.start, n.stop) for n in self.networks if n.kind == kind]

    def country_of(self, ip_index: int) -> str:
        return self.network_of(ip_index).country

    def region_of_country(self, country: str) -> str:
        return _COUNTRY_REGION.get(country, "eu")

    def __len__(self) -> int:
        return len(self.networks)
