"""The simulated IPv4 Internet: topology, workload, clock, and access physics."""

from repro.net import AddressSpace
from repro.simnet.clock import DAY, HOUR, WEEK, SimClock
from repro.simnet.honeypot import HONEYPOT_PORTS, HoneypotDeployment, deploy_honeypots
from repro.simnet.instances import PseudoHost, ServiceInstance, WebProperty
from repro.simnet.internet import (
    PreparedScanIndex,
    ProbeHit,
    SimConnection,
    SimulatedInternet,
    Vantage,
)
from repro.simnet.ports import PortModel, TOP_PORT_TABLE
from repro.simnet.topology import Network, NetworkKind, Topology, TopologyConfig
from repro.simnet.workload import (
    DEFAULT_ICS_COUNTS,
    Workload,
    WorkloadConfig,
    generate_workload,
)

__all__ = [
    "DAY",
    "HOUR",
    "WEEK",
    "SimClock",
    "ServiceInstance",
    "PseudoHost",
    "WebProperty",
    "SimulatedInternet",
    "SimConnection",
    "PreparedScanIndex",
    "ProbeHit",
    "Vantage",
    "PortModel",
    "TOP_PORT_TABLE",
    "Network",
    "NetworkKind",
    "Topology",
    "TopologyConfig",
    "Workload",
    "WorkloadConfig",
    "generate_workload",
    "DEFAULT_ICS_COUNTS",
    "HONEYPOT_PORTS",
    "HoneypotDeployment",
    "deploy_honeypots",
    "build_simnet",
]


def build_simnet(
    bits: int = 18,
    workload_config: WorkloadConfig | None = None,
    topology_config: TopologyConfig | None = None,
    seed: int = 0,
) -> SimulatedInternet:
    """Convenience constructor: space -> topology -> workload -> internet."""
    space = AddressSpace.of_bits(bits)
    topo_cfg = topology_config or TopologyConfig(seed=seed)
    topology = Topology.generate(space, topo_cfg)
    wl_cfg = workload_config or WorkloadConfig(seed=seed)
    workload = generate_workload(topology, wl_cfg)
    return SimulatedInternet(space, topology, workload, seed=seed)
