"""The port-popularity model (Appendix B, Figure 4).

Port populations follow a smoothly decaying power law with no inflection
between "popular" and "unpopular" ports: rank ``r`` carries weight
``(r + s)^-alpha``.  The first ~48 ranks map to well-known ports with their
conventional protocols; tail ranks map to a stable pseudorandom shuffle of
the remaining port numbers and carry the *diffused* protocol mix (mostly
HTTP/HTTPS — under 3% of HTTP ends up on TCP/80, per Izhikevich et al.).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.net import PORT_COUNT, AffinePermutation

__all__ = ["PortAssignment", "PortModel", "TOP_PORT_TABLE", "TAIL_PROTOCOL_MIX"]


@dataclass(frozen=True, slots=True)
class PortAssignment:
    """A sampled (port, protocol) placement for a new service."""

    port: int
    protocol: str
    transport: str
    tls: bool
    rank: int


#: (port, protocol, transport, tls) in descending responsiveness order.
TOP_PORT_TABLE: List[Tuple[int, str, str, bool]] = [
    (80, "HTTP", "tcp", False),
    (443, "HTTP", "tcp", True),
    (22, "SSH", "tcp", False),
    (7547, "HTTP", "tcp", False),
    (21, "FTP", "tcp", False),
    (25, "SMTP", "tcp", False),
    (8080, "HTTP", "tcp", False),
    (23, "TELNET", "tcp", False),
    (3389, "RDP", "tcp", False),
    (53, "DNS", "udp", False),
    (110, "POP3", "tcp", False),
    (445, "SMB", "tcp", False),
    (143, "IMAP", "tcp", False),
    (8443, "HTTP", "tcp", True),
    (993, "IMAP", "tcp", True),
    (995, "POP3", "tcp", True),
    (587, "SMTP", "tcp", False),
    (465, "SMTP", "tcp", True),
    (3306, "MYSQL", "tcp", False),
    (5060, "SIP", "udp", False),
    (161, "SNMP", "udp", False),
    (123, "NTP", "udp", False),
    (8000, "HTTP", "tcp", False),
    (8888, "HTTP", "tcp", False),
    (5900, "VNC", "tcp", False),
    (2222, "SSH", "tcp", False),
    (139, "SMB", "tcp", False),
    (389, "LDAP", "tcp", False),
    (6379, "REDIS", "tcp", False),
    (5432, "POSTGRES", "tcp", False),
    (81, "HTTP", "tcp", False),
    (8081, "HTTP", "tcp", False),
    (1883, "MQTT", "tcp", False),
    (27017, "MONGODB", "tcp", False),
    (1900, "UPNP", "udp", False),
    (69, "TFTP", "udp", False),
    (2082, "HTTP", "tcp", False),
    (4443, "HTTP", "tcp", True),
    (60000, "HTTP", "tcp", False),
    (636, "LDAP", "tcp", True),
    (2525, "SMTP", "tcp", False),
    (10000, "HTTP", "tcp", True),
    (5061, "SIP", "udp", False),
    (2323, "TELNET", "tcp", False),
    (6000, "X11", "tcp", False),
    (513, "RLOGIN", "tcp", False),
    (3388, "RDP", "tcp", False),
    (2121, "FTP", "tcp", False),
    (554, "RTSP", "tcp", False),
    (9200, "ELASTICSEARCH", "tcp", False),
    (11211, "MEMCACHED", "tcp", False),
    (1080, "SOCKS5", "tcp", False),
    (873, "RSYNC", "tcp", False),
    (5985, "WINRM", "tcp", False),
    (2375, "DOCKER", "tcp", False),
    (6443, "KUBERNETES", "tcp", True),
    (5672, "AMQP", "tcp", False),
    (9042, "CASSANDRA", "tcp", False),
    (631, "IPP", "tcp", False),
    (9100, "JETDIRECT", "tcp", False),
    (515, "LPD", "tcp", False),
]

#: Protocol mix for services diffused onto non-standard (tail) ports.
TAIL_PROTOCOL_MIX: List[Tuple[Tuple[str, bool], float]] = [
    (("HTTP", False), 0.47),
    (("HTTP", True), 0.24),
    (("SSH", False), 0.08),
    (("TELNET", False), 0.03),
    (("FTP", False), 0.02),
    (("REDIS", False), 0.02),
    (("VNC", False), 0.02),
    (("RDP", False), 0.02),
    (("SMTP", False), 0.02),
    (("MQTT", False), 0.02),
    (("MYSQL", False), 0.02),
    (("POSTGRES", False), 0.01),
    (("MONGODB", False), 0.01),
    (("SMB", False), 0.01),
    (("LDAP", False), 0.01),
    (("ELASTICSEARCH", False), 0.005),
    (("MEMCACHED", False), 0.005),
    (("DOCKER", False), 0.005),
    (("RTSP", False), 0.01),
    (("SOCKS5", False), 0.005),
    (("RSYNC", False), 0.005),
]


class PortModel:
    """Samples (port, protocol) placements under the Figure 4 power law."""

    def __init__(self, alpha: float = 1.2, shift: float = 2.0, seed: int = 0) -> None:
        self.alpha = alpha
        self.shift = shift
        ranks = np.arange(1, PORT_COUNT + 1, dtype=np.float64)
        weights = (ranks + shift) ** -alpha
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        # Stable shuffle assigning tail ranks to the remaining port numbers.
        top_ports = {entry[0] for entry in TOP_PORT_TABLE}
        perm = AffinePermutation(PORT_COUNT, seed=seed ^ 0x5EED)
        self._tail_ports: List[int] = []
        for element in perm.iterate():
            if element not in top_ports and element > 0:
                self._tail_ports.append(element)
        self._tail_mix_values = [v for v, _ in TAIL_PROTOCOL_MIX]
        self._tail_mix_weights = [w for _, w in TAIL_PROTOCOL_MIX]
        #: Highest valid rank: port 0 is unusable, so one fewer than 65536.
        self.max_rank = len(TOP_PORT_TABLE) + len(self._tail_ports)

    def rank_weight(self, rank: int) -> float:
        """The unnormalized population weight of a port rank (1-based)."""
        return float((rank + self.shift) ** -self.alpha)

    def sample_rank(self, rng: random.Random) -> int:
        """Draw a 1-based port rank from the power law."""
        rank = int(np.searchsorted(self._cdf, rng.random(), side="right")) + 1
        return min(rank, self.max_rank)

    def port_for_rank(self, rank: int) -> Tuple[int, Optional[Tuple[str, str, bool]]]:
        """The port number for a rank, plus its fixed protocol if top-ranked."""
        if not 1 <= rank <= self.max_rank:
            raise ValueError(f"rank {rank} outside [1, {self.max_rank}]")
        if rank <= len(TOP_PORT_TABLE):
            port, protocol, transport, tls = TOP_PORT_TABLE[rank - 1]
            return port, (protocol, transport, tls)
        return self._tail_ports[rank - len(TOP_PORT_TABLE) - 1], None

    def rank_of_port(self, port: int) -> int:
        """Inverse of :meth:`port_for_rank` (1-based)."""
        for i, entry in enumerate(TOP_PORT_TABLE):
            if entry[0] == port:
                return i + 1
        return len(TOP_PORT_TABLE) + self._tail_ports.index(port) + 1

    def top_ports(self, count: int) -> List[int]:
        """The ``count`` most populated ports, in rank order."""
        return [self.port_for_rank(r)[0] for r in range(1, count + 1)]

    def sample(self, rng: random.Random) -> PortAssignment:
        """Draw a service placement: port plus protocol."""
        rank = self.sample_rank(rng)
        port, fixed = self.port_for_rank(rank)
        if fixed is not None:
            protocol, transport, tls = fixed
        else:
            (protocol, tls) = rng.choices(
                self._tail_mix_values, weights=self._tail_mix_weights, k=1
            )[0]
            transport = "tcp"
        return PortAssignment(port=port, protocol=protocol, transport=transport, tls=tls, rank=rank)

    def expected_tier_shares(self) -> Tuple[float, float, float]:
        """Population shares of (top-10, ranks 11–100, tail) — Figure 4 math."""
        top10 = float(self._cdf[9])
        top100 = float(self._cdf[99])
        return top10, top100 - top10, 1.0 - top100
