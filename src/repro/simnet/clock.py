"""Simulation time.

The whole reproduction runs on a single discrete clock measured in *hours*
(floats).  Hours are the natural resolution for the paper's quantities —
refresh intervals, eviction windows, time-to-discovery — while still letting
probe timestamps interpolate smoothly inside a tick.
"""

from __future__ import annotations

__all__ = ["HOUR", "DAY", "WEEK", "SimClock"]

HOUR = 1.0
DAY = 24.0
WEEK = 7 * DAY


class SimClock:
    """A monotonically advancing simulation clock (hours since epoch).

    The clock may start negative: engine warm-up ("pre-history") runs before
    t=0, and evaluations happen at t >= 0, mirroring how real engines carry
    years of accumulated state into any measurement.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    @property
    def day(self) -> int:
        """The (possibly negative) day number containing ``now``."""
        return int(self._now // DAY)

    def advance(self, hours: float) -> float:
        """Move time forward; rejects travel into the past."""
        if hours < 0:
            raise ValueError(f"cannot advance by {hours} hours")
        self._now += hours
        return self._now

    def advance_to(self, when: float) -> float:
        """Jump to an absolute time at or after ``now``."""
        if when < self._now:
            raise ValueError(f"cannot rewind clock from {self._now} to {when}")
        self._now = float(when)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimClock t={self._now:.2f}h (day {self.day})>"
