"""Honeypot deployment for the Table 5 time-to-discovery experiment.

Deploys T-Pot-style honeypots listening on the paper's twelve ports,
staggered in batches, and computes each engine's discovery delay from the
contact log the simulated Internet keeps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.protocols.base import ServerProfile
from repro.simnet.clock import DAY
from repro.simnet.instances import INFINITY, ServiceInstance
from repro.simnet.internet import PreparedScanIndex, SimulatedInternet
from repro.simnet.topology import NetworkKind

__all__ = ["HONEYPOT_PORTS", "HoneypotDeployment", "deploy_honeypots"]

#: The paper's honeypot listeners: (port, protocol) as in Table 5.
HONEYPOT_PORTS: List[Tuple[int, str]] = [
    (80, "HTTP"),
    (443, "HTTP"),      # served over TLS
    (161, "SNMP"),
    (3389, "RDP"),
    (21, "FTP"),
    (2082, "HTTP"),
    (3306, "MYSQL"),
    (2222, "SSH"),
    (23, "TELNET"),
    (5060, "SIP"),
    (7547, "HTTP"),
    (60000, "HTTP"),
    (500, "HTTP"),
]


@dataclass(slots=True)
class HoneypotDeployment:
    """The deployed honeypot fleet and its service instances."""

    internet: SimulatedInternet
    hosts: List[int] = field(default_factory=list)           # ip indexes
    instances: List[ServiceInstance] = field(default_factory=list)
    deploy_times: Dict[int, float] = field(default_factory=dict)  # ip -> t

    def first_contact(self, scanner: str, layer: str = "l4") -> Dict[Tuple[int, int], float]:
        """Earliest contact per (ip, port) by ``scanner`` at ``layer``."""
        first: Dict[Tuple[int, int], float] = {}
        for contact in self.internet.honeypot_contacts:
            if contact.scanner != scanner or contact.layer != layer:
                continue
            key = (contact.ip_index, contact.port)
            if key not in first or contact.time < first[key]:
                first[key] = contact.time
        return first

    def discovery_delays(self, scanner: str, layer: str = "l4") -> Dict[int, List[float]]:
        """Per-port lists of (first contact - deploy time), hours."""
        first = self.first_contact(scanner, layer)
        delays: Dict[int, List[float]] = {port: [] for port, _ in HONEYPOT_PORTS}
        for (ip_index, port), t in first.items():
            deployed = self.deploy_times.get(ip_index)
            if deployed is not None and port in delays:
                delays[port].append(t - deployed)
        return delays


def deploy_honeypots(
    internet: SimulatedInternet,
    count: int = 100,
    start_time: float = 0.0,
    stagger_hours: float = 8.0,
    batch_size: Optional[int] = None,
    seed: int = 7,
    indexes_to_update: Sequence[PreparedScanIndex] = (),
) -> HoneypotDeployment:
    """Deploy ``count`` honeypots on cloud addresses, staggered in batches.

    The paper staggered 100 honeypots every eight hours over September
    19–27, 2024; ``batch_size`` defaults to spreading the fleet over ~8 days.
    ``indexes_to_update`` are live scan indexes that must learn about the
    new endpoints (running engines' permutation walks pick them up).
    """
    rng = random.Random(seed)
    deployment = HoneypotDeployment(internet=internet)
    cloud = internet.topology.networks_of_kind(NetworkKind.CLOUD)
    if not cloud:
        raise ValueError("topology has no cloud networks to deploy honeypots in")
    if batch_size is None:
        batch_size = max(1, count // 24)
    registry = internet.registry
    deployed = 0
    batch_index = 0
    while deployed < count:
        t = start_time + batch_index * stagger_hours
        for _ in range(min(batch_size, count - deployed)):
            network = rng.choices(cloud, weights=[n.size for n in cloud], k=1)[0]
            ip_index = network.start + rng.randrange(network.size)
            if any(ip_index == h for h in deployment.hosts):
                continue
            deployment.hosts.append(ip_index)
            deployment.deploy_times[ip_index] = t
            for port, protocol in HONEYPOT_PORTS:
                spec = registry.get(protocol)
                profile = spec.make_profile(rng)
                inst = ServiceInstance(
                    instance_id=internet.allocate_instance_id(),
                    ip_index=ip_index,
                    port=port,
                    transport=spec.transport,
                    protocol=protocol,
                    profile=profile,
                    birth=t,
                    death=INFINITY,
                    device_id=-ip_index - 1,
                    is_honeypot=True,
                )
                internet.add_instance(inst)
                deployment.instances.append(inst)
                for index in indexes_to_update:
                    index.add_instance(inst)
            deployed += 1
        batch_index += 1
    return deployment
