"""Workload synthesis: the ground-truth service population over time.

Generates a *stationary* population of service instances across the
configured horizon (M/M/inf per category: initial population with
memoryless residual lifetimes plus a Poisson birth process), with the
real-world behaviours the paper's architecture exists to handle:

* port populations under the Figure 4 power law, protocols diffused onto
  non-standard ports;
* short cloud lifespans, DHCP/mobile lease churn (devices moving address
  while their configuration persists), flapping services;
* pseudo-hosts responding on every port; phantom L4-only endpoints;
* TLS-wrapped services with linked certificates; name-addressed web
  properties discoverable via CT, passive DNS, and redirects;
* industrial-control services at Table 4's (scaled) population sizes,
  placed partly on non-standard ports.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.protocols.base import ServerProfile, TlsEndpointProfile
from repro.protocols.registry import ProtocolRegistry, default_registry
from repro.protocols.tlslayer import make_ja4s
from repro.simnet.clock import DAY
from repro.simnet.instances import INFINITY, PseudoHost, ServiceInstance, WebProperty
from repro.simnet.ports import TOP_PORT_TABLE, PortModel
from repro.simnet.topology import Network, NetworkKind, Topology

__all__ = ["WorkloadConfig", "Workload", "generate_workload", "DEFAULT_ICS_COUNTS"]


#: Stationary ICS population targets: Table 4's Censys-validated counts
#: scaled by ~1/100 (minimum 3 so every protocol is represented).
DEFAULT_ICS_COUNTS: Dict[str, int] = {
    "MODBUS": 420,
    "FOX": 200,
    "WDBRPC": 160,
    "BACNET": 131,
    "ATG": 84,
    "EIP": 75,
    "DIGI": 75,
    "IEC60870": 69,
    "S7": 65,
    "CODESYS": 25,
    "OPC_UA": 24,
    "CMORE": 23,
    "FINS": 18,
    "DNP3": 12,
    "CIMON_PLC": 10,
    "REDLION": 10,
    "PROCONOS": 7,
    "PCOM": 5,
    "PCWORX": 4,
    "GE_SRTP": 3,
    "HART": 3,
}

#: Lifetime mixtures per network kind: (weight, mean lifetime in hours).
_LIFETIME_COMPONENTS: Dict[str, List[Tuple[float, float]]] = {
    NetworkKind.CLOUD: [(0.30, 10 * DAY), (0.70, 45 * DAY)],
    NetworkKind.MOBILE: [(1.0, 20 * DAY)],
    NetworkKind.RESIDENTIAL: [(1.0, 45 * DAY)],
    NetworkKind.BUSINESS: [(0.25, 20 * DAY), (0.75, 150 * DAY)],
    NetworkKind.HOSTING: [(0.30, 15 * DAY), (0.70, 120 * DAY)],
}

#: Mean address-lease duration for kinds whose devices change IP.
_LEASE_MEANS: Dict[str, float] = {
    NetworkKind.RESIDENTIAL: 20 * DAY,
    NetworkKind.MOBILE: 6 * DAY,
}

#: Share of the service population hosted in each network kind.
_SERVICE_KIND_SHARES: Dict[str, float] = {
    NetworkKind.CLOUD: 0.30,
    NetworkKind.HOSTING: 0.16,
    NetworkKind.BUSINESS: 0.24,
    NetworkKind.RESIDENTIAL: 0.20,
    NetworkKind.MOBILE: 0.10,
}


@dataclass(slots=True)
class WorkloadConfig:
    """Knobs for workload synthesis.  Defaults target a mid-size simnet."""

    seed: int = 0
    #: Stationary count of ordinary services alive at any instant.
    services_target: int = 20_000
    #: Simulation horizon (hours).  Warm-up history runs before t=0.
    t_start: float = -90 * DAY
    t_end: float = 45 * DAY
    #: Probability a new service lands on an already-populated address.
    colocation_rate: float = 0.35
    #: Hosts answering on every port (None -> services_target // 500).
    pseudo_host_count: Optional[int] = None
    #: Extra L4-responsive endpoints exposing no L7 service, as a fraction
    #: of services_target (the LZR observation).
    phantom_rate: float = 0.05
    #: Fraction of stable-kind services that flap off/on at the same address.
    flap_rate: float = 0.08
    #: Name-addressed web properties (None -> services_target // 12).
    web_property_count: Optional[int] = None
    #: Multiplier on DEFAULT_ICS_COUNTS (None: scale with services_target
    #: so small test workloads keep proportionally small ICS populations).
    ics_scale: Optional[float] = None
    port_alpha: float = 1.2
    port_shift: float = 2.0
    #: Probability a tail-port service lands on one of its network's
    #: "palette" ports (operator deployment patterns — the structure
    #: predictive scanning learns; see Izhikevich et al.).
    palette_rate: float = 0.70


@dataclass(slots=True)
class Workload:
    """The generated ground truth handed to the simulated Internet."""

    config: WorkloadConfig
    instances: List[ServiceInstance]
    pseudo_hosts: List[PseudoHost]
    web_properties: List[WebProperty]
    port_model: PortModel

    def alive_at(self, t: float) -> List[ServiceInstance]:
        return [inst for inst in self.instances if inst.alive_at(t)]

    def services_alive_at(self, t: float) -> List[ServiceInstance]:
        """Real services only (phantoms excluded), the coverage denominator."""
        return [inst for inst in self.instances if inst.alive_at(t) and inst.protocol != "NONE"]


class _Generator:
    """Stateful generation pass (split into steps for readability)."""

    def __init__(self, topology: Topology, config: WorkloadConfig, registry: ProtocolRegistry) -> None:
        self.topology = topology
        self.config = config
        self.registry = registry
        self.rng = random.Random(config.seed)
        self.port_model = PortModel(config.port_alpha, config.port_shift, seed=config.seed)
        self.instances: List[ServiceInstance] = []
        self.pseudo_hosts: List[PseudoHost] = []
        self.web_properties: List[WebProperty] = []
        self._instance_id = 0
        self._device_id = 0
        self._used_bindings: Set[Tuple[int, int]] = set()
        self._kind_networks: Dict[str, List[Network]] = {
            kind: self.topology.networks_of_kind(kind) for kind in NetworkKind.ALL
        }
        self._kind_net_weights: Dict[str, List[int]] = {
            kind: [n.size for n in nets] for kind, nets in self._kind_networks.items()
        }
        self._kind_used_ips: Dict[str, List[int]] = {kind: [] for kind in NetworkKind.ALL}
        #: Per-network favored tail ports (operator deployment patterns).
        self._palettes: Dict[int, List[int]] = {}
        #: instances needing TLS profiles, built after vhost assignment.
        self._tls_pending: List[ServiceInstance] = []

    # -- id helpers ----------------------------------------------------

    def _next_instance_id(self) -> int:
        self._instance_id += 1
        return self._instance_id

    def _next_device_id(self) -> int:
        self._device_id += 1
        return self._device_id

    # -- placement helpers ----------------------------------------------

    def _pick_network(self, kind: str) -> Network:
        networks = self._kind_networks[kind]
        if not networks:
            networks = self.topology.networks
            weights = [n.size for n in networks]
        else:
            weights = self._kind_net_weights[kind]
        return self.rng.choices(networks, weights=weights, k=1)[0]

    def _pick_ip(self, kind: str, colocate: bool = True) -> int:
        used = self._kind_used_ips[kind]
        if colocate and used and self.rng.random() < self.config.colocation_rate:
            return self.rng.choice(used)
        network = self._pick_network(kind)
        ip_index = network.start + self.rng.randrange(network.size)
        used.append(ip_index)
        return ip_index

    def _palette(self, network: Network) -> List[int]:
        """The network's favored tail ports, generated lazily."""
        palette = self._palettes.get(network.network_id)
        if palette is None:
            n_top = len(TOP_PORT_TABLE)
            size = self.rng.randint(3, 20)
            palette = []
            for _ in range(size):
                rank = self.port_model.sample_rank(self.rng)
                if rank <= n_top:
                    rank += n_top  # shift into the tail, preserving decay
                port, _fixed = self.port_model.port_for_rank(rank)
                palette.append(port)
            self._palettes[network.network_id] = palette
        return palette

    def _claim_binding(self, kind: str, port: int) -> Tuple[int, int]:
        """Find an unused (ip, port) binding, redrawing on collision."""
        for attempt in range(256):
            ip_index = self._pick_ip(kind, colocate=attempt == 0)
            if (ip_index, port) not in self._used_bindings:
                self._used_bindings.add((ip_index, port))
                return ip_index, port
        # Dense port in a small space: fall back to any network kind.
        for _ in range(256):
            network = self.rng.choice(self.topology.networks)
            ip_index = network.start + self.rng.randrange(network.size)
            if (ip_index, port) not in self._used_bindings:
                self._used_bindings.add((ip_index, port))
                return ip_index, port
        raise RuntimeError("address space exhausted; enlarge the topology")

    def _claim_in_network(self, network: Network, port: int) -> Tuple[int, int]:
        """Claim a binding within one specific network (lease moves)."""
        for _ in range(256):
            ip_index = network.start + self.rng.randrange(network.size)
            if (ip_index, port) not in self._used_bindings:
                self._used_bindings.add((ip_index, port))
                return ip_index, port
        return self._claim_binding(network.kind, port)

    # -- stationary processes --------------------------------------------

    def _stationary_births(self, population: int, mean_life: float) -> List[Tuple[float, float]]:
        """(birth, lifetime) pairs for a stationary M/M/inf category."""
        cfg = self.config
        events: List[Tuple[float, float]] = []
        for _ in range(population):
            # Initial population: memoryless residual lifetime.
            events.append((cfg.t_start, self.rng.expovariate(1.0 / mean_life)))
        span = cfg.t_end - cfg.t_start
        expected_births = population / mean_life * span
        births = _poisson(self.rng, expected_births)
        for _ in range(births):
            birth = cfg.t_start + self.rng.random() * span
            events.append((birth, self.rng.expovariate(1.0 / mean_life)))
        return events

    # -- generation steps -------------------------------------------------

    def generate(self) -> Workload:
        self._generate_ordinary_services()
        self._generate_ics_services()
        self._generate_phantoms()
        self._generate_pseudo_hosts()
        self._assign_web_properties()
        self._build_tls_profiles()
        self.instances.sort(key=lambda inst: inst.instance_id)
        return Workload(
            config=self.config,
            instances=self.instances,
            pseudo_hosts=self.pseudo_hosts,
            web_properties=self.web_properties,
            port_model=self.port_model,
        )

    def _generate_ordinary_services(self) -> None:
        target = self.config.services_target
        for kind, share in _SERVICE_KIND_SHARES.items():
            for weight, mean_life in _LIFETIME_COMPONENTS[kind]:
                population = max(1, round(target * share * weight))
                for birth, lifetime in self._stationary_births(population, mean_life):
                    self._emit_service(kind, birth, lifetime)

    def _emit_service(self, kind: str, birth: float, lifetime: float) -> None:
        assignment = self.port_model.sample(self.rng)
        # Anchor the device in one network; diffused (tail-port) services
        # usually follow their operator's deployment pattern — the network
        # port palette — which is what predictive scanning can learn.
        first_ip = self._pick_ip(kind)
        network = self.topology.network_of(first_ip)
        port = assignment.port
        if assignment.rank > len(TOP_PORT_TABLE) and self.rng.random() < self.config.palette_rate:
            port = self.rng.choice(self._palette(network))
        spec = self.registry.get(assignment.protocol)
        profile = spec.make_profile(self.rng)
        device_id = self._next_device_id()
        death = birth + lifetime
        lease_mean = _LEASE_MEANS.get(kind)
        intervals: List[Tuple[float, float, Optional[Tuple[int, int]]]]
        if lease_mean is not None:
            # The device moves address within its network at each lease.
            intervals = [(b, d, None) for b, d in self._lease_intervals(birth, death, lease_mean)]
        elif self.rng.random() < self.config.flap_rate:
            binding = self._claim_in_network_or_first(network, first_ip, port)
            intervals = [(b, d, binding) for b, d in self._flap_intervals(birth, death)]
        else:
            intervals = [(birth, death, self._claim_in_network_or_first(network, first_ip, port))]
        for b, d, binding in intervals:
            if binding is None:
                ip_index, bound_port = self._claim_in_network(network, port)
            else:
                ip_index, bound_port = binding
            instance = ServiceInstance(
                instance_id=self._next_instance_id(),
                ip_index=ip_index,
                port=bound_port,
                transport=assignment.transport,
                protocol=assignment.protocol,
                profile=profile,
                birth=b,
                death=d,
                device_id=device_id,
            )
            self.instances.append(instance)
            # C2 panels front their traffic with TLS regardless of port
            # (that is what makes JA4S pivoting work for threat hunters).
            if assignment.tls or profile.attributes.get("is_c2"):
                self._tls_pending.append(instance)

    def _claim_in_network_or_first(
        self, network: Network, first_ip: int, port: int
    ) -> Tuple[int, int]:
        """Prefer the already-picked address (keeps co-location working)."""
        if (first_ip, port) not in self._used_bindings:
            self._used_bindings.add((first_ip, port))
            return first_ip, port
        return self._claim_in_network(network, port)

    def _lease_intervals(self, birth: float, death: float, lease_mean: float) -> List[Tuple[float, float]]:
        """Split a device lifetime into address-lease windows."""
        intervals = []
        t = birth
        while t < death:
            lease = self.rng.expovariate(1.0 / lease_mean)
            intervals.append((t, min(t + lease, death)))
            t += lease
        return intervals

    def _flap_intervals(self, birth: float, death: float) -> List[Tuple[float, float]]:
        """Split a lifetime into 2–3 on-periods with off-gaps (same binding)."""
        pieces = self.rng.randint(2, 3)
        span = death - birth
        if not math.isfinite(span) or span <= 2.0:
            return [(birth, death)]
        intervals = []
        t = birth
        for i in range(pieces):
            on = span / pieces * self.rng.uniform(0.5, 0.9)
            intervals.append((t, min(t + on, death)))
            gap = self.rng.uniform(0.5 * DAY, 6 * DAY)
            t = intervals[-1][1] + gap
            if t >= death:
                break
        return intervals

    def _generate_ics_services(self) -> None:
        mean_life = 80 * DAY
        scale = self.config.ics_scale
        if scale is None:
            scale = self.config.services_target / 20_000
        for protocol, base_count in DEFAULT_ICS_COUNTS.items():
            if protocol not in self.registry:
                continue
            spec = self.registry.get(protocol)
            population = max(3, round(base_count * scale))
            for birth, lifetime in self._stationary_births(population, mean_life):
                kind = NetworkKind.MOBILE if self.rng.random() < 0.15 else NetworkKind.BUSINESS
                if spec.default_ports and self.rng.random() < 0.55:
                    port = spec.default_ports[0]
                else:
                    port = self.rng.randrange(10_000, 65_536)
                profile = spec.make_profile(self.rng)
                device_id = self._next_device_id()
                death = birth + lifetime
                # LTE/5G-connected control systems churn addresses, but on
                # CGNAT lease timescales, not handset timescales.
                if kind == NetworkKind.MOBILE:
                    windows = self._lease_intervals(birth, death, 15 * DAY)
                else:
                    windows = [(birth, death)]
                for b, d in windows:
                    ip_index, bound_port = self._claim_binding(kind, port)
                    self.instances.append(
                        ServiceInstance(
                            instance_id=self._next_instance_id(),
                            ip_index=ip_index,
                            port=bound_port,
                            transport=spec.transport,
                            protocol=protocol,
                            profile=profile,
                            birth=b,
                            death=d,
                            device_id=device_id,
                        )
                    )

    def _generate_phantoms(self) -> None:
        """L4-responsive endpoints exposing no application service."""
        population = round(self.config.services_target * self.config.phantom_rate)
        if population <= 0:
            return
        mean_life = 30 * DAY
        for birth, lifetime in self._stationary_births(population, mean_life):
            kind = self.rng.choice([NetworkKind.BUSINESS, NetworkKind.HOSTING, NetworkKind.CLOUD])
            port = self.rng.randrange(1, 65_536)
            ip_index, port = self._claim_binding(kind, port)
            self.instances.append(
                ServiceInstance(
                    instance_id=self._next_instance_id(),
                    ip_index=ip_index,
                    port=port,
                    transport="tcp",
                    protocol="NONE",
                    profile=ServerProfile(protocol="NONE", software=("", "", "")),
                    birth=birth,
                    death=birth + lifetime,
                    device_id=self._next_device_id(),
                )
            )

    def _generate_pseudo_hosts(self) -> None:
        count = self.config.pseudo_host_count
        if count is None:
            count = max(3, self.config.services_target // 500)
        for i in range(count):
            kind = self.rng.choice([NetworkKind.BUSINESS, NetworkKind.RESIDENTIAL])
            ip_index = self._pick_ip(kind)
            self.pseudo_hosts.append(
                PseudoHost(
                    pseudo_id=i,
                    ip_index=ip_index,
                    birth=self.config.t_start,
                    death=INFINITY,
                    banner=self.rng.choice(["\\x05\\x00", "ECHO", "\\x00\\x00\\x00\\x01"]),
                )
            )

    def _assign_web_properties(self) -> None:
        count = self.config.web_property_count
        if count is None:
            count = max(4, self.config.services_target // 12)
        # Front web properties on TLS-enabled HTTP services in stable kinds.
        candidates = [
            inst
            for inst in self._tls_pending
            if inst.protocol == "HTTP"
            and self.topology.network_of(inst.ip_index).kind
            in (NetworkKind.CLOUD, NetworkKind.HOSTING, NetworkKind.BUSINESS)
        ]
        if not candidates:
            return
        for i in range(count):
            front = self.rng.choice(candidates)
            name = f"www.site-{i:05d}.example.com"
            is_phishing = self.rng.random() < 0.03
            impersonates = None
            title = f"Site {i}"
            if is_phishing:
                impersonates = self.rng.choice(["examplebank", "megacorp", "trustpay"])
                name = f"{impersonates}-login.site-{i:05d}.example.com"
                title = f"{impersonates.title()} Sign In"
            vhosts = front.profile.attributes.setdefault("vhosts", {})
            vhosts[name] = {
                "html_title": title,
                "status": 200,
                "body_keywords": ("login",) if is_phishing else (),
            }
            self.web_properties.append(
                WebProperty(
                    name=name,
                    device_id=front.device_id,
                    in_ct_log=self.rng.random() < 0.85,
                    in_passive_dns=self.rng.random() < 0.60,
                    via_redirect=self.rng.random() < 0.15,
                    published_at=max(front.birth, self.config.t_start),
                    page_title=title,
                    is_phishing=is_phishing,
                    impersonates=impersonates,
                )
            )

    def _build_tls_profiles(self) -> None:
        """Attach certificates once vhost names are final (one per device)."""
        by_device: Dict[int, TlsEndpointProfile] = {}
        names_by_device: Dict[int, List[str]] = {}
        for prop in self.web_properties:
            names_by_device.setdefault(prop.device_id, []).append(prop.name)
        for inst in self._tls_pending:
            tls = by_device.get(inst.device_id)
            if tls is None:
                names = tuple(
                    names_by_device.get(inst.device_id, [f"host-{inst.device_id}.example.net"])
                )
                self_signed = self.rng.random() < 0.25
                sha = hashlib.sha256(
                    f"cert:{inst.device_id}:{','.join(names)}".encode()
                ).hexdigest()
                tls = TlsEndpointProfile(
                    certificate_sha256=sha,
                    subject_names=names,
                    ja4s=make_ja4s(inst.profile.software),
                    self_signed=self_signed,
                )
                by_device[inst.device_id] = tls
            inst.profile.tls = tls


def generate_workload(
    topology: Topology,
    config: WorkloadConfig | None = None,
    registry: ProtocolRegistry | None = None,
) -> Workload:
    """Generate the ground-truth population for a topology."""
    return _Generator(topology, config or WorkloadConfig(), registry or default_registry()).generate()


def _poisson(rng: random.Random, mean: float) -> int:
    """Poisson sample (normal approximation above 1e3 for speed)."""
    if mean <= 0:
        return 0
    if mean > 1000:
        return max(0, round(rng.gauss(mean, math.sqrt(mean))))
    # Knuth's method.
    threshold = math.exp(-mean)
    count, product = 0, rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count
