"""Service instances: the ground-truth population of the simulated Internet.

A :class:`ServiceInstance` is one service bound to one (address, port) for a
time interval.  DHCP/cloud churn is represented as *chains* of instances
sharing a ``device_id``: the device and its configuration persist while its
address changes, which is exactly the phenomenon that ruins engines that
never prune stale address bindings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.protocols.base import ServerProfile

__all__ = ["ServiceInstance", "PseudoHost", "WebProperty"]

INFINITY = math.inf


@dataclass(slots=True)
class ServiceInstance:
    """One service at one (ip, port) over [birth, death) in hours."""

    instance_id: int
    ip_index: int
    port: int
    transport: str
    protocol: str
    profile: ServerProfile
    birth: float
    death: float = INFINITY
    #: Stable across address moves of the same underlying device.
    device_id: int = -1
    is_honeypot: bool = False

    def alive_at(self, t: float) -> bool:
        return self.birth <= t < self.death

    @property
    def lifetime(self) -> float:
        return self.death - self.birth

    @property
    def key(self) -> tuple[int, int]:
        """The (ip, port) binding this instance occupies."""
        return (self.ip_index, self.port)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ServiceInstance #{self.instance_id} {self.protocol} "
            f"ip={self.ip_index} port={self.port} [{self.birth:.1f},{self.death:.1f})>"
        )


@dataclass(slots=True)
class PseudoHost:
    """A host answering (nearly identically) on *every* port.

    Middleboxes and some CPE behave this way; the paper filters hosts that
    respond on more than 20 ports with nearly identical "pseudo" services
    out of its ground truth because they otherwise outnumber legitimate
    services in 65K-port scans.
    """

    pseudo_id: int
    ip_index: int
    birth: float
    death: float = INFINITY
    banner: str = "220 ready"

    def alive_at(self, t: float) -> bool:
        return self.birth <= t < self.death


@dataclass(slots=True)
class WebProperty:
    """A name-addressed HTTP(S) entity served by some host via SNI/Host.

    ``device_id`` ties the name to the device chain fronting it, so the name
    keeps resolving across the device's address moves (CDN-like behaviour).
    """

    name: str
    device_id: int
    #: Where the name is discoverable from, per the paper's sources.
    in_ct_log: bool = False
    in_passive_dns: bool = False
    via_redirect: bool = False
    #: First time the name became discoverable (CT entry timestamp).
    published_at: float = 0.0
    page_title: str = ""
    is_phishing: bool = False
    impersonates: Optional[str] = None
